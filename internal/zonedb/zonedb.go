// Package zonedb is the synthetic DNS namespace of the reproduction.
//
// It has two tiers:
//
//  1. Explicit zones — a few dozen fully-modelled zones: the misused-name
//     candidates of the paper (Table 2), the ten .gov names the major
//     attack entity rotates through (with double-signature DNSSEC
//     rollovers driving their ANY response sizes, §6.1), plus popular and
//     anchor names for the cache-snooping study (Fig. 17).
//
//  2. A procedural bulk namespace standing in for OpenINTEL's 440 M
//     measured names (default scale 1:100, i.e. 4.4 M names). Per-name
//     response-size profiles are derived deterministically from a hash, so
//     the full CDF of Fig. 16 can be regenerated without storing records.
//
// Response sizes are computed from actual record sets (via dnswire wire
// lengths and dnssec signing state), never hard-coded.
package zonedb

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"slices"
	"strings"

	"dnsamp/internal/dnssec"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

// Zone is one explicitly modelled zone.
type Zone struct {
	Name string
	TTL  uint32
	// RRsets holds the authoritative base records by type (unsigned;
	// DNSSEC material is derived from Signer).
	RRsets map[dnswire.Type][]dnswire.RR
	// Signer is non-nil for DNSSEC-signed zones.
	Signer *dnssec.Signer
	// AllowANY is false for zones whose authoritative servers implement
	// RFC 8482 minimal ANY responses.
	AllowANY bool
	// PopularityRank is an Alexa-style global rank (lower = more
	// popular, 0 = unranked). Drives cache prefill in the resolver sim.
	PopularityRank int
	// NSAddrs are the authoritative nameserver addresses.
	NSAddrs []netip.Addr
}

// DB is the namespace database.
type DB struct {
	zones map[string]*Zone
	// ordered explicit names for deterministic iteration
	names []string

	entityNames  []string // the major entity's .gov rotation, sorted
	misusedNames []string // all misused-name candidates (34)
	attacked     []string // candidates with attack traffic (32)

	procCount int
	procTLDs  []string
}

// Config controls namespace synthesis.
type Config struct {
	// ProceduralNames is the size of the bulk namespace (default 4.4 M:
	// the paper's 440 M at 1:100 scale).
	ProceduralNames int
}

// DefaultConfig returns the standard 1:100-scale configuration.
func DefaultConfig() Config { return Config{ProceduralNames: 4_400_000} }

// entityGov are the ten .gov names the major attack entity rotates
// through (Fig. 8), in its (lexicographic) rotation order.
var entityGov = []string{
	"bja.gov", "cybercrime.gov", "doj.gov", "elderjustice.gov",
	"esc.gov", "financialresearch.gov", "itap.gov", "nij.gov",
	"nsf.gov", "peacecorps.gov",
}

// otherGov are additional misused .gov names (Table 2 reports 17 .gov
// names in total).
var otherGov = []string{
	"americorps.gov", "bjs.gov", "eftps.gov", "nsa.gov",
	"ojp.gov", "ovc.gov", "usdoj.gov",
}

// otherMisused are the non-.gov misused names, matching Table 2's TLD
// distribution (.za .cc .pl .cz .com×2 .org×2 .se .eu .be root .br .ru×2).
var otherMisused = []string{
	"amp.co.za", "ripe.cc", "nask.pl", "nic.cz",
	"bigcorp.com", "cdnstatic.com",
	"opendata.org", "researchnet.org",
	"iis.se", "europa.eu", "dnssec.be",
	".", "registro.br", "mail.ru", "rbc.ru",
}

// idleCandidates are selected by the detector's selectors but never
// attacked (the paper detects attack traffic for 32 of 34 names).
var idleCandidates = []string{"reserve.net", "backup.info"}

// popularZones are popular (highly cached) names for the cache-snooping
// comparison; rank per the paper's Fig. 17 annotations.
var popularZones = []struct {
	name string
	rank int
}{
	{"facebook.com", 7},
	{"360.cn", 10},
	{"nsa.gov", 17_000},
	{"americorps.gov", 94_000},
	{"shadowserver.org", 117_000},
	{"eftps.gov", 123_000},
	{"peacecorps.gov", 191_000},
	{"isc.org", 250_000},
}

// New builds the namespace.
func New(cfg Config) *DB {
	if cfg.ProceduralNames <= 0 {
		cfg.ProceduralNames = DefaultConfig().ProceduralNames
	}
	db := &DB{
		zones:     make(map[string]*Zone),
		procCount: cfg.ProceduralNames,
		procTLDs:  []string{"com", "net", "org", "de", "nl", "info", "io", "co", "us", "fr"},
	}

	// Entity .gov zones: DNSSEC-signed, double-signature ZSK rollovers,
	// staggered so rollovers relay from one name to the next (the attack
	// entity follows the size signal, §6.1). Base ANY sizes sit below
	// the 4096-byte EDNS limit; the rollover overhead lifts them above.
	// Phase stagger of 19 days: name i's rollover begins 19 days after
	// name i-1's, so when a rollover's 14-day plateau ends and the size
	// signal decays for ~5 days, the next name in lexicographic order is
	// just entering its own rollover — the relay the attack entity rides
	// (§6.1). The measurement start (day 18048 since the epoch) is an
	// exact multiple of the 47-day interval, anchoring name 0's rollover
	// to the first day of the campaign.
	for i, name := range entityGov {
		phase := -simclock.Days(19 * i)
		signer := dnssec.NewSigner(name, dnswire.AlgRSASHA256, dnssec.DoubleSignature, 47, phase)
		z := db.addZone(name, 3600, signer, true)
		fillGovZone(z, i)
	}
	for i, name := range otherGov {
		signer := dnssec.NewSigner(name, dnswire.AlgRSASHA256, dnssec.DoubleSignature, 61, simclock.Days(13*i))
		z := db.addZone(name, 3600, signer, true)
		fillGovZone(z, i+3)
	}
	// Target ANY sizes per Table 2's per-TLD maxima. Zones signed with a
	// pre-publish signer get their signature overhead on top, so their
	// targets are reduced accordingly when padding.
	targets := map[string]int{
		"amp.co.za": 5155, "ripe.cc": 4408, "nask.pl": 5954, "nic.cz": 5881,
		"bigcorp.com": 10270, "cdnstatic.com": 4100,
		"opendata.org": 6090, "researchnet.org": 3600,
		"iis.se": 5535, "europa.eu": 4096, "dnssec.be": 8199,
		"registro.br": 3893, "mail.ru": 1500, "rbc.ru": 1400,
	}
	for i, name := range otherMisused {
		var signer *dnssec.Signer
		if i%3 == 0 && name != "." {
			signer = dnssec.NewSigner(name, dnswire.AlgRSASHA256, dnssec.PrePublish, 90, simclock.Days(7*i))
		}
		z := db.addZone(name, 3600, signer, true)
		if name == "." {
			fillRootZone(z)
		} else {
			// The padding loop measures the live ANY size (including
			// any signature overhead), so the Table 2 target can be
			// used directly.
			fillLargeTXTZone(z, targets[name])
		}
	}
	for i, name := range idleCandidates {
		z := db.addZone(name, 3600, nil, true)
		fillLargeTXTZone(z, 4200+300*i)
	}
	for _, p := range popularZones {
		name := dnswire.CanonicalName(p.name)
		z, ok := db.zones[name]
		if !ok {
			z = db.addZone(p.name, 300, nil, false)
			fillOrdinaryZone(z)
		}
		z.PopularityRank = p.rank
	}

	db.entityNames = canonAll(entityGov)
	db.misusedNames = canonAll(append(append(append([]string{}, entityGov...), otherGov...), append(otherMisused, idleCandidates...)...))
	db.attacked = canonAll(append(append(append([]string{}, entityGov...), otherGov...), otherMisused...))
	slices.Sort(db.names)
	return db
}

func canonAll(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = dnswire.CanonicalName(n)
	}
	return out
}

func (db *DB) addZone(name string, ttl uint32, signer *dnssec.Signer, allowANY bool) *Zone {
	cn := dnswire.CanonicalName(name)
	z := &Zone{
		Name:     cn,
		TTL:      ttl,
		RRsets:   make(map[dnswire.Type][]dnswire.RR),
		Signer:   signer,
		AllowANY: allowANY,
	}
	// Two authoritative nameservers per zone, derived deterministically.
	h := nameHash(cn)
	for i := 0; i < 2; i++ {
		z.NSAddrs = append(z.NSAddrs, netip.AddrFrom4([4]byte{
			198, 18, byte(h >> (8 * (i + 1))), byte(h>>uint(8*i)) | 1,
		}))
	}
	db.zones[cn] = z
	db.names = append(db.names, cn)
	return z
}

// fillGovZone populates a .gov zone whose unsigned ANY payload plus
// steady-state DNSSEC overhead lands just below the 4096-byte EDNS limit;
// rollovers push it well above (Fig. 8b).
func fillGovZone(z *Zone, variant int) {
	base := z.Name
	addr := deterministicAddr(base, 0)
	z.RRsets[dnswire.TypeA] = []dnswire.RR{rr(base, dnswire.TypeA, z.TTL, dnswire.AData{Addr: addr})}
	z.RRsets[dnswire.TypeAAAA] = []dnswire.RR{rr(base, dnswire.TypeAAAA, z.TTL, dnswire.AAAAData{Addr: deterministicAddr6(base)})}
	z.RRsets[dnswire.TypeNS] = []dnswire.RR{
		rr(base, dnswire.TypeNS, z.TTL, dnswire.NameData{Target: "ns1." + base}),
		rr(base, dnswire.TypeNS, z.TTL, dnswire.NameData{Target: "ns2." + base}),
	}
	z.RRsets[dnswire.TypeSOA] = []dnswire.RR{rr(base, dnswire.TypeSOA, z.TTL, dnswire.SOAData{
		MName: "ns1." + base, RName: "hostmaster." + base,
		Serial: 2019060100, Refresh: 7200, Retry: 3600, Expire: 1209600, Min: 300,
	})}
	z.RRsets[dnswire.TypeMX] = []dnswire.RR{
		rr(base, dnswire.TypeMX, z.TTL, dnswire.MXData{Pref: 10, Host: "mail." + base}),
		rr(base, dnswire.TypeMX, z.TTL, dnswire.MXData{Pref: 20, Host: "mail2." + base}),
	}
	// Federal zones carry sizeable TXT policy records (SPF, verification
	// tokens); variant scales the bulk so names differ in max size while
	// every base (non-rollover) ANY stays below the 4096 B EDNS limit.
	txts := []string{
		"v=spf1 include:_spf." + base + " ip4:192.0.2.0/24 ip4:198.51.100.0/24 -all",
		strings.Repeat("google-site-verification=", 1) + synthToken(base, 40),
	}
	for i := 0; i < 2; i++ {
		txts = append(txts, fmt.Sprintf("policy-%d=%s", i, synthToken(base, 60+14*(variant%5))))
	}
	z.RRsets[dnswire.TypeTXT] = []dnswire.RR{rr(base, dnswire.TypeTXT, z.TTL, dnswire.TXTData{Strings: txts})}
	z.RRsets[dnswire.TypeCAA] = []dnswire.RR{rr(base, dnswire.TypeCAA, z.TTL, dnswire.CAAData{Tag: "issue", Value: "digicert.com"})}
}

// fillLargeTXTZone populates a non-gov misused zone: big TXT payloads
// that make ANY attractive even without DNSSEC. targetBytes is the ANY
// response size to approximate (Table 2's per-TLD max sizes).
func fillLargeTXTZone(z *Zone, targetBytes int) {
	base := z.Name
	z.RRsets[dnswire.TypeA] = []dnswire.RR{rr(base, dnswire.TypeA, z.TTL, dnswire.AData{Addr: deterministicAddr(base, 0)})}
	z.RRsets[dnswire.TypeNS] = []dnswire.RR{
		rr(base, dnswire.TypeNS, z.TTL, dnswire.NameData{Target: "ns1." + base}),
		rr(base, dnswire.TypeNS, z.TTL, dnswire.NameData{Target: "ns2." + base}),
	}
	z.RRsets[dnswire.TypeSOA] = []dnswire.RR{rr(base, dnswire.TypeSOA, z.TTL, dnswire.SOAData{
		MName: "ns1." + base, RName: "hostmaster." + base,
		Serial: 2019010100, Refresh: 7200, Retry: 3600, Expire: 1209600, Min: 300,
	})}
	z.RRsets[dnswire.TypeMX] = []dnswire.RR{rr(base, dnswire.TypeMX, z.TTL, dnswire.MXData{Pref: 10, Host: "mx." + base})}
	// Pad with TXT blobs until the ANY size approximates the target.
	var txts []string
	for i := 0; ; i++ {
		z.RRsets[dnswire.TypeTXT] = []dnswire.RR{rr(base, dnswire.TypeTXT, z.TTL, dnswire.TXTData{Strings: txts})}
		gap := targetBytes - z.ANYSize(0)
		if gap <= 40 || i > 200 {
			break
		}
		chunk := gap - 20
		if chunk > 230 {
			chunk = 230
		}
		txts = append(txts, fmt.Sprintf("blob-%02d=%s", i, synthToken(base, chunk)))
	}
}

// fillRootZone gives the root name an NS set resembling a hint file.
func fillRootZone(z *Zone) {
	for c := byte('a'); c <= 'm'; c++ {
		z.RRsets[dnswire.TypeNS] = append(z.RRsets[dnswire.TypeNS],
			rr(".", dnswire.TypeNS, 518400, dnswire.NameData{Target: string(c) + ".root-servers.net."}))
	}
	z.RRsets[dnswire.TypeSOA] = []dnswire.RR{rr(".", dnswire.TypeSOA, 86400, dnswire.SOAData{
		MName: "a.root-servers.net.", RName: "nstld.verisign-grs.com.",
		Serial: 2019060100, Refresh: 1800, Retry: 900, Expire: 604800, Min: 86400,
	})}
	var txts []string
	for i := 0; i < 15; i++ {
		txts = append(txts, fmt.Sprintf("rootmeta-%02d=%s", i, synthToken(".", 220)))
	}
	z.RRsets[dnswire.TypeTXT] = []dnswire.RR{rr(".", dnswire.TypeTXT, 86400, dnswire.TXTData{Strings: txts})}
}

// fillOrdinaryZone populates a small, unremarkable zone (popular web
// properties: large infrastructures but small DNS answers).
func fillOrdinaryZone(z *Zone) {
	base := z.Name
	z.RRsets[dnswire.TypeA] = []dnswire.RR{rr(base, dnswire.TypeA, z.TTL, dnswire.AData{Addr: deterministicAddr(base, 0)})}
	z.RRsets[dnswire.TypeAAAA] = []dnswire.RR{rr(base, dnswire.TypeAAAA, z.TTL, dnswire.AAAAData{Addr: deterministicAddr6(base)})}
	z.RRsets[dnswire.TypeNS] = []dnswire.RR{
		rr(base, dnswire.TypeNS, z.TTL, dnswire.NameData{Target: "ns1." + base}),
		rr(base, dnswire.TypeNS, z.TTL, dnswire.NameData{Target: "ns2." + base}),
	}
	z.RRsets[dnswire.TypeTXT] = []dnswire.RR{rr(base, dnswire.TypeTXT, z.TTL, dnswire.TXTData{Strings: []string{"v=spf1 -all"}})}
}

func rr(name string, t dnswire.Type, ttl uint32, data dnswire.RData) dnswire.RR {
	return dnswire.RR{Name: dnswire.CanonicalName(name), Type: t, Class: dnswire.ClassIN, TTL: ttl, Data: data}
}

// Zone returns an explicit zone.
func (db *DB) Zone(name string) (*Zone, bool) {
	z, ok := db.zones[dnswire.CanonicalName(name)]
	return z, ok
}

// ExplicitNames returns all explicit zone names, sorted.
func (db *DB) ExplicitNames() []string { return db.names }

// EntityNames returns the major entity's rotation list in order.
func (db *DB) EntityNames() []string { return db.entityNames }

// MisusedCandidates returns all 34 misused-name candidates.
func (db *DB) MisusedCandidates() []string { return db.misusedNames }

// AttackedNames returns the candidates that see attack traffic (32).
func (db *DB) AttackedNames() []string { return db.attacked }

// NumProceduralNames returns the bulk namespace size.
func (db *DB) NumProceduralNames() int { return db.procCount }

// ProceduralName returns the i-th bulk name (0-based), equal to
// fmt.Sprintf("host%07d.%s.", i, tld) but without the formatter
// overhead (name-table freezing interns hundreds of thousands of
// these).
func (db *DB) ProceduralName(i int) string {
	tld := db.procTLDs[i%len(db.procTLDs)]
	var digits [20]byte
	d := len(digits)
	for v := i; ; {
		d--
		digits[d] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	buf := make([]byte, 0, 13+len(tld))
	buf = append(buf, "host"...)
	for pad := 7 - (len(digits) - d); pad > 0; pad-- {
		buf = append(buf, '0')
	}
	buf = append(buf, digits[d:]...)
	buf = append(buf, '.')
	buf = append(buf, tld...)
	buf = append(buf, '.')
	return string(buf)
}

// ANYSize returns the estimated ANY response size in bytes of a name at
// time t, matching the paper's methodology of summing stored resource
// record sizes (Fig. 16: "we calculate the response sizes based on the
// cumulative resource record sizes stored in the DNS and ignore common
// software or protocol limits").
func (db *DB) ANYSize(name string, t simclock.Time) int {
	cn := dnswire.CanonicalName(name)
	if z, ok := db.zones[cn]; ok {
		return z.ANYSize(t)
	}
	return db.proceduralANYSize(cn)
}

// ANYSize computes the ANY response size of an explicit zone at t from
// its real record sets.
func (z *Zone) ANYSize(t simclock.Time) int {
	size := dnswire.HeaderLen + dnswire.EncodedNameLen(z.Name) + 4 // question
	size += 11                                                     // OPT RR
	n := 0
	for _, set := range z.RRsets {
		for _, r := range set {
			size += rrWireLen(r)
		}
		n++
	}
	if z.Signer != nil {
		size += z.Signer.SignatureOverheadAt(t, z.Name, n, z.TTL)
	}
	return size
}

// ResponseSize estimates the response size for a specific query type.
func (db *DB) ResponseSize(name string, qtype dnswire.Type, t simclock.Time) int {
	cn := dnswire.CanonicalName(name)
	z, ok := db.zones[cn]
	if !ok {
		if qtype == dnswire.TypeANY {
			return db.proceduralANYSize(cn)
		}
		return db.proceduralTypedSize(cn, qtype)
	}
	if qtype == dnswire.TypeANY {
		if !z.AllowANY {
			// RFC 8482 minimal response: synthesized HINFO-sized answer.
			return dnswire.HeaderLen + dnswire.EncodedNameLen(z.Name) + 4 + 11 + rrFixed(z.Name, 9)
		}
		return z.ANYSize(t)
	}
	size := dnswire.HeaderLen + dnswire.EncodedNameLen(z.Name) + 4 + 11
	for _, r := range z.RRsets[qtype] {
		size += rrWireLen(r)
	}
	if z.Signer != nil && len(z.RRsets[qtype]) > 0 {
		for _, sig := range z.Signer.Sign(t, z.Name, qtype, z.TTL) {
			size += rrWireLen(sig)
		}
	}
	return size
}

// BuildANYResponse materializes the full ANY response message of an
// explicit zone at time t, including live DNSSEC records.
func (z *Zone) BuildANYResponse(q *dnswire.Message, t simclock.Time) *dnswire.Message {
	resp := dnswire.NewResponse(q)
	resp.Header.AA = true
	types := make([]dnswire.Type, 0, len(z.RRsets))
	for typ := range z.RRsets {
		types = append(types, typ)
	}
	slices.Sort(types)
	for _, typ := range types {
		resp.Answers = append(resp.Answers, z.RRsets[typ]...)
	}
	if z.Signer != nil {
		resp.Answers = append(resp.Answers, z.Signer.DNSKEYRecords(t, z.TTL)...)
		resp.Answers = append(resp.Answers, z.Signer.Sign(t, z.Name, dnswire.TypeDNSKEY, z.TTL)...)
		for _, typ := range types {
			resp.Answers = append(resp.Answers, z.Signer.Sign(t, z.Name, typ, z.TTL)...)
		}
	}
	resp.Additional = append(resp.Additional, dnswire.RR{
		Name: ".", Type: dnswire.TypeOPT, Class: dnswire.Class(4096), Data: dnswire.OPTData{},
	})
	return resp
}

// BuildResponse materializes a typed response from an explicit zone.
func (z *Zone) BuildResponse(q *dnswire.Message, t simclock.Time) *dnswire.Message {
	if q.QType() == dnswire.TypeANY && z.AllowANY {
		return z.BuildANYResponse(q, t)
	}
	resp := dnswire.NewResponse(q)
	resp.Header.AA = true
	set := z.RRsets[q.QType()]
	resp.Answers = append(resp.Answers, set...)
	if z.Signer != nil && len(set) > 0 {
		resp.Answers = append(resp.Answers, z.Signer.Sign(t, z.Name, q.QType(), z.TTL)...)
	}
	if len(set) == 0 {
		resp.Authority = append(resp.Authority, z.RRsets[dnswire.TypeSOA]...)
	}
	return resp
}

// --- procedural namespace -------------------------------------------------

// Tail calibration: match the paper's Fig. 16 proportions.
//
//	P(size > 4096)          ≈ 2.1e-4  (92k of 440M)
//	P(size > misused max)   ≈ 2.06e-5 (9048 of 440M)
//	max estimated           ≈ 142 855 B (14× the largest observed)
//
// The shape parameter trades off two paper anchors that cannot both hold
// exactly at 1:100 scale: the count of names above the best misused name
// (0.002%) and the maximum estimated size (142,855 B → 14× headroom).
// α = 2.0 keeps the above-misused share at ~0.003% while letting the
// 4.4 M-name maximum reach ~125 kB (≈12× headroom).
const (
	procTailP      = 2.1e-4
	procTailStart  = 4096.0
	procTailMax    = 142855.0
	procTailAlpha  = 2.0
	procMisusedMax = 10270.0
)

// proceduralANYSize derives a deterministic ANY response size for a bulk
// name from its hash. The body of the distribution is a mixture of small
// answers; the tail is bounded-Pareto.
func (db *DB) proceduralANYSize(name string) int {
	u := hashUniform(name)
	switch {
	case u < 0.70:
		// Bare A/AAAA/NS/SOA zones: 120–400 B.
		return 120 + int(u/0.70*280)
	case u < 0.95:
		// SPF/TXT-bearing zones: 400–1200 B.
		return 400 + int((u-0.70)/0.25*800)
	case u < 1-procTailP:
		// DNSSEC-signed zones: 1200–4096 B.
		frac := (u - 0.95) / (1 - procTailP - 0.95)
		return 1200 + int(frac*(procTailStart-1200))
	default:
		// Heavy tail: bounded Pareto on [4096, 142855].
		v := (u - (1 - procTailP)) / procTailP // uniform in [0,1)
		size := procTailStart * math.Pow(1-v, -1/procTailAlpha)
		if size > procTailMax {
			size = procTailMax
		}
		return int(size)
	}
}

// proceduralTypedSize derives a typed (non-ANY) response size for a bulk
// name: single RRsets with realistic spread, with ~25% of the namespace
// DNSSEC-signed (adding an RRSIG). This keeps the background byte volume
// honest — the paper's attack traffic is 5% of DNS packets but 40% of
// bytes, which requires organic responses of a few hundred bytes on
// average, not bare minimum answers.
func (db *DB) proceduralTypedSize(name string, qtype dnswire.Type) int {
	u := hashUniform(string(qtype.String()) + "|" + name)
	size := dnswire.HeaderLen + dnswire.EncodedNameLen(name) + 4 + 11
	size += 120 + int(u*420)
	if hashUniform("dnssec|"+name) < 0.25 {
		size += 286 // one RSA-2048 RRSIG
	}
	return size
}

// CountProceduralAbove returns how many bulk names exceed the threshold,
// computed analytically from the calibrated distribution (iterating 4.4 M
// hashes in tests would be slow; the experiments harness iterates for
// real when building the CDF).
func (db *DB) CountProceduralAbove(threshold float64) int {
	var p float64
	switch {
	case threshold <= 400:
		p = 1 // everything at/above tiny sizes — callers use larger thresholds
	case threshold <= 1200:
		p = 1 - (0.70 + 0.25*(threshold-400)/800)
	case threshold <= procTailStart:
		frac := (threshold - 1200) / (procTailStart - 1200)
		p = procTailP + (1-procTailP-0.95)*(1-frac)
	case threshold >= procTailMax:
		p = 0
	default:
		p = procTailP * math.Pow(threshold/procTailStart, -procTailAlpha)
	}
	return int(p * float64(db.procCount))
}

func rrWireLen(r dnswire.RR) int {
	return dnswire.EncodedNameLen(r.Name) + 10 + r.Data.WireLen()
}

// rrFixed is the wire length of one RR with rdlen bytes of rdata.
func rrFixed(name string, rdlen int) int {
	return dnswire.EncodedNameLen(name) + 10 + rdlen
}

// nameHash returns a stable 32-bit hash of a canonical name.
func nameHash(name string) uint32 {
	sum := sha256.Sum256([]byte(name))
	return binary.BigEndian.Uint32(sum[:4])
}

// hashUniform maps a name to a uniform float in [0,1).
func hashUniform(name string) float64 {
	sum := sha256.Sum256([]byte(name))
	v := binary.BigEndian.Uint64(sum[:8])
	return float64(v>>11) / float64(1<<53)
}

// deterministicAddr derives a stable IPv4 address for a name.
func deterministicAddr(name string, salt byte) netip.Addr {
	sum := sha256.Sum256([]byte{salt})
	h := sha256.Sum256(append(sum[:4], name...))
	return netip.AddrFrom4([4]byte{203, h[0], h[1], h[2] | 1})
}

// deterministicAddr6 derives a stable IPv6 address for a name.
func deterministicAddr6(name string) netip.Addr {
	h := sha256.Sum256([]byte("v6:" + name))
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = 0x0d, 0xb8
	copy(b[4:], h[:12])
	return netip.AddrFrom16(b)
}

// synthToken returns n bytes of deterministic base32-ish filler.
func synthToken(seed string, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz234567"
	out := make([]byte, 0, n)
	ctr := 0
	for len(out) < n {
		h := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", seed, ctr)))
		for _, b := range h {
			if len(out) == n {
				break
			}
			out = append(out, alphabet[int(b)%len(alphabet)])
		}
		ctr++
	}
	return string(out)
}
