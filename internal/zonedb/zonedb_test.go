package zonedb

import (
	"strings"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

func smallDB() *DB { return New(Config{ProceduralNames: 50_000}) }

func TestCandidateCounts(t *testing.T) {
	db := smallDB()
	if got := len(db.MisusedCandidates()); got != 34 {
		t.Errorf("misused candidates = %d, want 34 (paper's final list)", got)
	}
	if got := len(db.AttackedNames()); got != 32 {
		t.Errorf("attacked names = %d, want 32 (94%% of 34)", got)
	}
	if got := len(db.EntityNames()); got != 10 {
		t.Errorf("entity names = %d, want 10", got)
	}
}

func TestEntityNamesSortedAndGov(t *testing.T) {
	db := smallDB()
	names := db.EntityNames()
	for i, n := range names {
		if !strings.HasSuffix(n, ".gov.") {
			t.Errorf("entity name %q not .gov", n)
		}
		if i > 0 && names[i-1] >= n {
			t.Errorf("entity rotation not lexicographic at %q", n)
		}
	}
}

func TestGovTLDCount(t *testing.T) {
	db := smallDB()
	gov := 0
	for _, n := range db.AttackedNames() {
		if dnswire.TLD(n) == "gov" {
			gov++
		}
	}
	if gov != 17 {
		t.Errorf(".gov attacked names = %d, want 17 (Table 2)", gov)
	}
}

func TestEveryCandidateHasZone(t *testing.T) {
	db := smallDB()
	for _, n := range db.MisusedCandidates() {
		if _, ok := db.Zone(n); !ok {
			t.Errorf("candidate %q has no zone", n)
		}
	}
}

func TestEntityANYSizesPlateau(t *testing.T) {
	db := smallDB()
	for _, n := range db.EntityNames() {
		z, _ := db.Zone(n)
		if z.Signer == nil {
			t.Fatalf("%q unsigned", n)
		}
		var base, peak = 1 << 30, 0
		for d := 0; d < 335; d++ {
			s := db.ANYSize(n, simclock.MeasurementStart.Add(simclock.Days(d)))
			if s < base {
				base = s
			}
			if s > peak {
				peak = s
			}
		}
		if peak-base < 2000 {
			t.Errorf("%q: rollover delta = %d, want >= 2000", n, peak-base)
		}
		if base > 4200 {
			t.Errorf("%q: base size %d too far above EDNS limit", n, base)
		}
		if peak < dnswire.RecommendedEDNSLimit {
			t.Errorf("%q: peak %d below EDNS limit — never attractive", n, peak)
		}
	}
}

func TestRolloverPlateauLastsTwoWeeks(t *testing.T) {
	db := smallDB()
	n := db.EntityNames()[0]
	// Find a plateau and measure its length.
	var sizes []int
	for d := 0; d < 200; d++ {
		sizes = append(sizes, db.ANYSize(n, simclock.MeasurementStart.Add(simclock.Days(d))))
	}
	peak := 0
	for _, s := range sizes {
		if s > peak {
			peak = s
		}
	}
	// Longest run at peak level.
	run, best := 0, 0
	for _, s := range sizes {
		if s == peak {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	if best != 14 {
		t.Errorf("plateau length = %d days, want 14", best)
	}
}

func TestTable2MaxSizes(t *testing.T) {
	db := smallDB()
	cases := []struct {
		name   string
		target int
	}{
		{"bigcorp.com", 10270},
		{"dnssec.be", 8199},
		{"amp.co.za", 5155},
		{"nic.cz", 5881},
		{"iis.se", 5535},
	}
	for _, c := range cases {
		got := db.ANYSize(c.name, simclock.MeasurementStart)
		if got < c.target-300 || got > c.target+300 {
			t.Errorf("%s ANY = %d, want ~%d", c.name, got, c.target)
		}
	}
}

func TestANYVsTypedSize(t *testing.T) {
	db := smallDB()
	tm := simclock.MeasurementStart
	anySize := db.ResponseSize("doj.gov", dnswire.TypeANY, tm)
	aSize := db.ResponseSize("doj.gov", dnswire.TypeA, tm)
	if anySize <= aSize {
		t.Errorf("ANY (%d) should exceed A (%d)", anySize, aSize)
	}
	if aSize < 50 {
		t.Errorf("A response implausibly small: %d", aSize)
	}
}

func TestRFC8482MinimalANY(t *testing.T) {
	db := smallDB()
	z, ok := db.Zone("facebook.com")
	if !ok {
		t.Fatal("facebook.com missing")
	}
	if z.AllowANY {
		t.Fatal("popular zone should restrict ANY")
	}
	got := db.ResponseSize("facebook.com", dnswire.TypeANY, simclock.MeasurementStart)
	if got > 200 {
		t.Errorf("minimal ANY = %d, want small", got)
	}
}

func TestProceduralDeterminism(t *testing.T) {
	db := smallDB()
	tm := simclock.MeasurementStart
	for i := 0; i < 100; i++ {
		n := db.ProceduralName(i)
		if db.ANYSize(n, tm) != db.ANYSize(n, tm.Add(simclock.Days(30))) {
			t.Fatalf("procedural size of %q not time-invariant", n)
		}
	}
	if db.ProceduralName(5) == db.ProceduralName(6) {
		t.Error("procedural names collide")
	}
}

func TestProceduralTailCalibration(t *testing.T) {
	db := New(Config{ProceduralNames: 1_000_000})
	over4096, over10270 := 0, 0
	tm := simclock.MeasurementStart
	// Sample every 7th name for speed: 142k names.
	n := 0
	for i := 0; i < db.NumProceduralNames(); i += 7 {
		s := db.ANYSize(db.ProceduralName(i), tm)
		if s > 4096 {
			over4096++
		}
		if s > 10270 {
			over10270++
		}
		n++
	}
	// Expected: 2.1e-4 and 2.06e-5 of n. Allow generous slack (it is a
	// hash-driven sample).
	e4096 := 2.1e-4 * float64(n)
	if float64(over4096) < e4096/3 || float64(over4096) > e4096*3 {
		t.Errorf(">4096 count = %d, expected ~%.0f", over4096, e4096)
	}
	if over10270 == 0 {
		t.Error("no names above the misused max — tail missing")
	}
	if over10270 >= over4096 {
		t.Error("tail ordering broken")
	}
}

func TestCountProceduralAboveMatchesSample(t *testing.T) {
	db := New(Config{ProceduralNames: 1_000_000})
	analytic := db.CountProceduralAbove(4096)
	if analytic < 100 || analytic > 400 {
		t.Errorf("analytic count above 4096 = %d, expected ~210", analytic)
	}
	if db.CountProceduralAbove(200000) != 0 {
		t.Error("count above max should be 0")
	}
	if db.CountProceduralAbove(142855) != 0 {
		t.Error("count above tail max should be 0")
	}
}

func TestBuildANYResponseEncodes(t *testing.T) {
	db := smallDB()
	z, _ := db.Zone("doj.gov")
	q := dnswire.NewQuery(42, "doj.gov", dnswire.TypeANY, 4096)
	tm := simclock.MeasurementStart
	resp := z.BuildANYResponse(q, tm)
	wire := dnswire.Encode(resp)
	// The materialized response should be within ~15% of the estimate
	// (compression makes the wire form smaller than the sum of
	// uncompressed record lengths).
	est := db.ANYSize("doj.gov", tm)
	if len(wire) > est || float64(len(wire)) < 0.75*float64(est) {
		t.Errorf("wire %d vs estimate %d", len(wire), est)
	}
	res, err := dnswire.Parse(wire)
	if err != nil || !res.Complete {
		t.Fatalf("parse: %v", err)
	}
	if res.Msg.Header.ID != 42 || !res.Msg.Header.QR {
		t.Error("response header wrong")
	}
	hasDNSKEY, hasRRSIG := false, false
	for _, rr := range res.Msg.Answers {
		switch rr.Type {
		case dnswire.TypeDNSKEY:
			hasDNSKEY = true
		case dnswire.TypeRRSIG:
			hasRRSIG = true
		}
	}
	if !hasDNSKEY || !hasRRSIG {
		t.Error("signed ANY response missing DNSSEC records")
	}
}

func TestBuildTypedResponse(t *testing.T) {
	db := smallDB()
	z, _ := db.Zone("nsf.gov")
	q := dnswire.NewQuery(9, "nsf.gov", dnswire.TypeA, 4096)
	resp := z.BuildResponse(q, simclock.MeasurementStart)
	if len(resp.Answers) < 2 { // A + RRSIG
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	if resp.Answers[0].Type != dnswire.TypeA {
		t.Errorf("first answer %v", resp.Answers[0].Type)
	}
	// Unknown type yields SOA in authority.
	q2 := dnswire.NewQuery(9, "nsf.gov", dnswire.TypeSRV, 4096)
	resp2 := z.BuildResponse(q2, simclock.MeasurementStart)
	if len(resp2.Answers) != 0 || len(resp2.Authority) == 0 {
		t.Error("negative answer should carry SOA")
	}
}

func TestRootZone(t *testing.T) {
	db := smallDB()
	z, ok := db.Zone(".")
	if !ok {
		t.Fatal("root zone missing")
	}
	if len(z.RRsets[dnswire.TypeNS]) != 13 {
		t.Errorf("root NS count = %d, want 13", len(z.RRsets[dnswire.TypeNS]))
	}
	size := db.ANYSize(".", simclock.MeasurementStart)
	if size < 3500 || size > 4600 {
		t.Errorf("root ANY = %d, want ~4098 (Table 2)", size)
	}
}

func TestPopularityRanks(t *testing.T) {
	db := smallDB()
	fb, _ := db.Zone("facebook.com")
	if fb.PopularityRank != 7 {
		t.Errorf("facebook rank = %d", fb.PopularityRank)
	}
	pc, _ := db.Zone("peacecorps.gov")
	if pc.PopularityRank != 191_000 {
		t.Errorf("peacecorps rank = %d", pc.PopularityRank)
	}
	// peacecorps.gov is both misused and ranked — must stay AllowANY.
	if !pc.AllowANY {
		t.Error("peacecorps.gov lost AllowANY when ranked")
	}
}

func TestNSAddrsAssigned(t *testing.T) {
	db := smallDB()
	for _, n := range db.MisusedCandidates() {
		z, _ := db.Zone(n)
		if len(z.NSAddrs) != 2 {
			t.Errorf("%q NSAddrs = %d", n, len(z.NSAddrs))
		}
	}
}

func TestExplicitNamesSorted(t *testing.T) {
	db := smallDB()
	names := db.ExplicitNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("ExplicitNames not sorted")
		}
	}
}
