package zonedb

import (
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
)

func TestProceduralTypedSizes(t *testing.T) {
	db := smallDB()
	tm := simclock.MeasurementStart
	var sum, n int
	signed := 0
	for i := 0; i < 2000; i++ {
		name := db.ProceduralName(i)
		s := db.ResponseSize(name, dnswire.TypeA, tm)
		if s < 100 || s > 1000 {
			t.Fatalf("typed size %d out of realistic range for %q", s, name)
		}
		sum += s
		n++
		// Signed names carry an RRSIG-sized bump; detect by comparing
		// with the unsigned floor.
		if s > 600 {
			signed++
		}
	}
	mean := float64(sum) / float64(n)
	if mean < 250 || mean > 550 {
		t.Errorf("mean typed size = %.0f, want a few hundred bytes (§7.2 byte-share calibration)", mean)
	}
	if signed == 0 {
		t.Error("no DNSSEC-signed bulk names found")
	}
	// Deterministic.
	if db.ResponseSize(db.ProceduralName(7), dnswire.TypeA, tm) !=
		db.ResponseSize(db.ProceduralName(7), dnswire.TypeA, tm.Add(simclock.Day)) {
		t.Error("typed size not stable")
	}
	// Type-sensitive.
	a := db.ResponseSize(db.ProceduralName(7), dnswire.TypeA, tm)
	txt := db.ResponseSize(db.ProceduralName(7), dnswire.TypeTXT, tm)
	if a == txt {
		t.Log("A and TXT sizes equal for this name — acceptable but rare")
	}
}

func TestTypedSmallerThanANY(t *testing.T) {
	db := smallDB()
	tm := simclock.MeasurementStart
	// For the heavy-tail names ANY dwarfs typed answers.
	for i := 0; i < 50_000; i += 997 {
		name := db.ProceduralName(i)
		anySize := db.ResponseSize(name, dnswire.TypeANY, tm)
		aSize := db.ResponseSize(name, dnswire.TypeA, tm)
		if anySize > 2000 && aSize >= anySize {
			t.Fatalf("%q: A (%d) >= ANY (%d)", name, aSize, anySize)
		}
	}
}
