package zonedb

import (
	"fmt"
	"testing"
)

func TestProceduralNameFormat(t *testing.T) {
	db := New(Config{ProceduralNames: 100})
	for _, i := range []int{0, 1, 7, 99, 12345, 9999999, 10000000, 123456789} {
		tld := db.procTLDs[i%len(db.procTLDs)]
		want := fmt.Sprintf("host%07d.%s.", i, tld)
		if got := db.ProceduralName(i); got != want {
			t.Errorf("ProceduralName(%d) = %q, want %q", i, got, want)
		}
	}
}
