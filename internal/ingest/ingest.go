// Package ingest is the supervised multi-source intake: a scheduler
// that drives N heterogeneous sources — UDP sFlow listeners, tailed
// datagram logs, finite sFlow/pcap replay files, synthetic fill —
// concurrently, each wrapped in a supervisor with its own lifecycle
// state machine, and merges their datagrams into one output stream
// under a pluggable scheduling policy.
//
// Fault isolation is the design center: one misbehaving feed is never
// the whole service's problem. A source that errors is restarted with
// capped exponential backoff; one that stops making progress is
// caught by a stall watchdog and restarted the same way; one that
// keeps failing without ever making progress is quarantined with a
// recorded reason — its supervisor parks, its neighbours keep
// feeding. A panic while handling one datagram is contained to that
// datagram: it is quarantined through the configured poison sink
// (the PR 7 poison-file path, now stamped with the source ID) and the
// source keeps running.
//
// Concurrency model: one goroutine per source (the supervisor running
// the source adapter), each feeding a bounded per-source buffer; one
// dispatcher goroutine drains the buffers into the output channel in
// the order the configured policy picks; one watchdog goroutine
// checks progress clocks. Backpressure is per source first — a full
// buffer blocks only its own adapter — and global second (a slow
// consumer of Items() eventually fills every buffer).
//
// Cursors: every emitted Item carries the source's progress cursor
// just past that datagram (a byte offset for file-backed sources, a
// deterministic datagram count for pcap/synthetic, 0 for UDP, which
// resumes through the per-agent sequence barrier instead). The
// consumer persists the cursor of the newest item it fully consumed,
// keyed by the stable Spec.ID, and hands the map back through
// Config.Cursors on resume; each adapter seeks to its cursor, so a
// restart re-reads nothing it already delivered.
package ingest

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// Kind is the source adapter family of a Spec.
type Kind string

const (
	// KindUDP listens for sFlow v5 datagrams on a UDP socket.
	KindUDP Kind = "udp"
	// KindTail follows a datagram log as it grows, surviving rotation
	// and truncation (sflow.Tailer semantics). Never finishes.
	KindTail Kind = "tail"
	// KindReplay reads a datagram log start to end, then completes.
	KindReplay Kind = "replay"
	// KindPCAP reads a classic pcap capture, batching packets into
	// per-second datagrams, then completes.
	KindPCAP Kind = "pcap"
	// KindSynthetic generates sampled campaign traffic (the ecosystem
	// generator) as datagrams, then completes.
	KindSynthetic Kind = "synthetic"
)

// Spec describes one configured source. The canonical string form —
// what ParseSpec accepts and ID reproduces — is:
//
//	udp://HOST:PORT
//	tail:PATH
//	replay:PATH
//	pcap:PATH
//	synthetic:scale=0.05,days=2,seed=11
//
// ID is the normalized spec string; it is the stable key checkpoint
// cursors are stored under, so it must not change across restarts of
// the same configuration.
type Spec struct {
	ID   string
	Kind Kind

	// Addr is the UDP listen address (KindUDP).
	Addr string
	// Path is the file path (KindTail, KindReplay, KindPCAP).
	Path string

	// Synthetic-fill parameters (KindSynthetic).
	Scale float64
	Days  int
	Seed  int64
}

// Durable reports whether the source's input survives a crash on its
// own (a file on disk, a deterministic generator): durable sources are
// flow-controlled, never shed, because dropping a datagram would lose
// data a resume could have replayed. UDP is the one non-durable kind.
func (sp Spec) Durable() bool { return sp.Kind != KindUDP }

// agent synthesizes a per-source sFlow agent address for sources whose
// input carries none (pcap, synthetic): 198.18/15 benchmarking space,
// low bytes from a hash of the source ID.
func (sp Spec) agent() [4]byte {
	h := fnv.New32a()
	io.WriteString(h, sp.ID)
	s := h.Sum32()
	return [4]byte{198, 18, byte(s >> 8), byte(s)}
}

// ParseSpec parses the canonical string form of one source spec.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	kind, rest, ok := strings.Cut(s, ":")
	if !ok && Kind(s) != KindSynthetic {
		return Spec{}, fmt.Errorf("ingest: spec %q: want kind:rest (udp://ADDR, tail:PATH, replay:PATH, pcap:PATH, synthetic:[k=v,...])", s)
	}
	switch Kind(kind) {
	case KindUDP:
		addr := strings.TrimPrefix(rest, "//")
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return Spec{}, fmt.Errorf("ingest: spec %q: %w", s, err)
		}
		return Spec{ID: "udp://" + addr, Kind: KindUDP, Addr: addr}, nil
	case KindTail, KindReplay, KindPCAP:
		if rest == "" {
			return Spec{}, fmt.Errorf("ingest: spec %q: empty path", s)
		}
		return Spec{ID: kind + ":" + rest, Kind: Kind(kind), Path: rest}, nil
	case KindSynthetic:
		sp := Spec{Kind: KindSynthetic, Scale: 0.05, Days: 1, Seed: 11}
		if rest != "" {
			for _, kv := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return Spec{}, fmt.Errorf("ingest: spec %q: option %q is not k=v", s, kv)
				}
				var err error
				switch k {
				case "scale":
					sp.Scale, err = strconv.ParseFloat(v, 64)
				case "days":
					sp.Days, err = strconv.Atoi(v)
				case "seed":
					sp.Seed, err = strconv.ParseInt(v, 10, 64)
				default:
					err = fmt.Errorf("unknown option %q", k)
				}
				if err != nil {
					return Spec{}, fmt.Errorf("ingest: spec %q: %v", s, err)
				}
			}
		}
		if sp.Scale <= 0 || sp.Days < 1 {
			return Spec{}, fmt.Errorf("ingest: spec %q: scale and days must be positive", s)
		}
		sp.ID = fmt.Sprintf("synthetic:scale=%g,days=%d,seed=%d", sp.Scale, sp.Days, sp.Seed)
		return sp, nil
	default:
		return Spec{}, fmt.Errorf("ingest: spec %q: unknown kind %q", s, kind)
	}
}

// ParseSpecs parses a spec config file: one spec per line, blank lines
// and #-comments skipped.
func ParseSpecs(r io.Reader) ([]Spec, error) {
	var out []Spec
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp, err := ParseSpec(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseSpecFile reads a spec config file from disk.
func ParseSpecFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSpecs(f)
}

// Scheduling policies.
const (
	// PolicyRoundRobin cycles over sources with buffered datagrams —
	// fair-share interleave, the default.
	PolicyRoundRobin = "round-robin"
	// PolicyBacklog picks the source with the most buffered datagrams —
	// drains the deepest backlog first.
	PolicyBacklog = "backlog"
	// PolicyArrival emits datagrams in global capture-timestamp order —
	// a heap-merge across source heads for merge-replay of multi-vantage
	// recordings. The merge waits for every live source to present its
	// next datagram (bounded by Tuning.StallAfter, after which buffered
	// datagrams flow anyway), so it is meant for finite replay inputs;
	// an idle live source caps the merge rate at that bound.
	PolicyArrival = "arrival"
)

// Tuning holds the supervision knobs. Zero fields take the documented
// defaults; tests shrink them to drive the state machine quickly.
type Tuning struct {
	// BufLen is the per-source buffer capacity in datagrams (default 64).
	BufLen int
	// BackoffMin/BackoffMax bound the capped-exponential restart delay
	// (defaults 50ms / 5s).
	BackoffMin, BackoffMax time.Duration
	// StallAfter is the watchdog deadline: a running source with an
	// empty buffer and no progress heartbeat for this long is restarted
	// (default 10s). It also bounds the arrival policy's merge wait.
	StallAfter time.Duration
	// MaxRestarts is how many consecutive failures without any emitted
	// datagram a source survives before it is quarantined (default 8).
	MaxRestarts int
}

func (t Tuning) withDefaults() Tuning {
	if t.BufLen <= 0 {
		t.BufLen = 64
	}
	if t.BackoffMin <= 0 {
		t.BackoffMin = 50 * time.Millisecond
	}
	if t.BackoffMax <= 0 {
		t.BackoffMax = 5 * time.Second
	}
	if t.StallAfter <= 0 {
		t.StallAfter = 10 * time.Second
	}
	if t.MaxRestarts <= 0 {
		t.MaxRestarts = 8
	}
	return t
}

// Config configures a Scheduler.
type Config struct {
	// Specs are the sources to drive; at least one is required, and
	// IDs must be unique.
	Specs []Spec
	// Policy picks the dispatch order (default PolicyRoundRobin).
	Policy string
	// Cursors are per-source resume cursors keyed by Spec.ID (from a
	// checkpoint); absent entries start from the top.
	Cursors map[string]int64
	// TimeFromUptime stamps datagrams with their Uptime field as a unix
	// second (the replay convention) instead of the recorded arrival
	// time (file sources) or the wall clock (UDP).
	TimeFromUptime bool

	Tuning Tuning

	// ListenPacket, when set, binds UDP ingest sockets — the
	// fault-injection seam, as on server.Config.
	ListenPacket func(addr string) (net.PacketConn, error)
	// WrapReader, when set, wraps every file-backed replay reader —
	// the stream-fault seam (faults.Injector.Reader).
	WrapReader func(id string, r io.Reader) io.Reader
	// FaultPanic, when non-nil, panics datagram delivery on matching
	// datagrams — the test hook for per-datagram panic containment.
	FaultPanic func(id string, dg *sflow.Datagram) bool
	// Poison receives datagrams whose delivery panicked, for offline
	// triage (the service wires its poison-file writer here).
	Poison func(id string, dg *sflow.Datagram, cause any)
}

// Item is one scheduled datagram: the unit the dispatcher hands to the
// consumer.
type Item struct {
	// SourceID is the Spec.ID of the source that produced it.
	SourceID string
	Kind     Kind
	// Durable mirrors Spec.Durable: a durable item must be flow-
	// controlled, not shed.
	Durable bool

	Dg *sflow.Datagram
	At simclock.Time

	// Cursor is the source's progress cursor just past this datagram
	// (byte offset or deterministic count; 0 for UDP). Epoch increments
	// when a tailed file is reopened after rotation or truncation, so
	// cursors from different file incarnations never compare.
	Cursor int64
	Epoch  uint64
}

// State is a supervisor's lifecycle state.
type State int32

const (
	// StateStarting: the adapter is (re)opening its input.
	StateStarting State = iota
	// StateHealthy: the source has shown progress since its last start.
	StateHealthy
	// StateBackoff: the source failed and is waiting out its restart
	// delay.
	StateBackoff
	// StateQuarantined: the source failed MaxRestarts times in a row
	// without progress (or stalled repeatedly) and has been parked with
	// a reason; the service keeps running without it.
	StateQuarantined
	// StateDone: a finite source drained its input completely.
	StateDone
	// StateStopped: shut down with the scheduler.
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateHealthy:
		return "healthy"
	case StateBackoff:
		return "backoff"
	case StateQuarantined:
		return "quarantined"
	case StateDone:
		return "done"
	default:
		return "stopped"
	}
}

// SupervisorStats is the externally visible per-source supervisor row:
// what /sources serializes under "inputs" and the per-input metrics
// export.
type SupervisorStats struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Addr is the bound listen address (UDP sources, once bound).
	Addr string `json:"addr,omitempty"`

	// Received counts datagrams read from the input; ParseErrors the
	// subset that failed sFlow parsing; Emitted the subset delivered to
	// the dispatcher; Panics the subset quarantined by per-datagram
	// panic containment.
	Received    uint64 `json:"received"`
	ParseErrors uint64 `json:"parseErrors"`
	Emitted     uint64 `json:"emitted"`
	Panics      uint64 `json:"panics"`

	// Restarts counts supervisor restarts (errors and stalls); Stalls
	// the subset forced by the watchdog.
	Restarts uint64 `json:"restarts"`
	Stalls   uint64 `json:"stalls"`

	// Buffered is the current per-source buffer depth; Cursor/Epoch the
	// newest emitted progress cursor.
	Buffered int    `json:"buffered"`
	Cursor   int64  `json:"cursor"`
	Epoch    uint64 `json:"epoch"`

	// LastError is the most recent failure ("" while clean);
	// QuarantineReason is set once the source is parked.
	LastError        string `json:"lastError,omitempty"`
	QuarantineReason string `json:"quarantineReason,omitempty"`
}
