// Scheduler and supervisors: the concurrency heart of multi-source
// ingest. Each configured source runs under its own Supervisor — a
// restart loop owning the source's lifecycle state machine
// (starting → healthy → backoff → quarantined / done / stopped) — and
// feeds a bounded per-source buffer. A single dispatcher drains the
// buffers into the output channel in whatever order the configured
// policy picks; a watchdog restarts sources that stop making progress.
// All supervisors share one failure philosophy: a broken source is
// retried with capped-exponential backoff, a wedged one is cancelled
// and (if need be) abandoned, a hopeless one is parked with a reason —
// and none of it is ever allowed to become its neighbours' problem.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

// Scheduler drives the configured sources and merges their datagrams
// into Items(). Construct with New, then Start; Stop is idempotent.
type Scheduler struct {
	cfg Config
	tun Tuning
	pol policy

	mu   sync.Mutex
	cond *sync.Cond
	sups []*Supervisor

	ctx    context.Context
	cancel context.CancelFunc
	out    chan Item
	wg     sync.WaitGroup
	once   sync.Once
}

// New validates the configuration and builds a scheduler (sources do
// not start until Start).
func New(cfg Config) (*Scheduler, error) {
	if len(cfg.Specs) == 0 {
		return nil, errors.New("ingest: no sources configured")
	}
	seen := make(map[string]bool, len(cfg.Specs))
	for _, sp := range cfg.Specs {
		if seen[sp.ID] {
			return nil, fmt.Errorf("ingest: duplicate source %q", sp.ID)
		}
		seen[sp.ID] = true
	}
	s := &Scheduler{cfg: cfg, tun: cfg.Tuning.withDefaults()}
	// Runners receive &s.cfg, so they must see the defaulted knobs too:
	// a zero StallAfter would give the UDP runner an already-expired
	// read deadline on every loop — a socket that can never hear.
	s.cfg.Tuning = s.tun
	switch cfg.Policy {
	case "", PolicyRoundRobin:
		s.pol = &roundRobin{last: -1}
	case PolicyBacklog:
		s.pol = backlogWeighted{}
	case PolicyArrival:
		s.pol = arrivalOrder{}
	default:
		return nil, fmt.Errorf("ingest: unknown policy %q (want %s, %s, or %s)",
			cfg.Policy, PolicyRoundRobin, PolicyBacklog, PolicyArrival)
	}
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.out = make(chan Item)
	for i, sp := range cfg.Specs {
		sv := &Supervisor{s: s, idx: i, spec: sp, run: newRunner(sp, &s.cfg)}
		sv.cursor.Store(cfg.Cursors[sp.ID])
		s.sups = append(s.sups, sv)
	}
	return s, nil
}

// Start launches the supervisors, the watchdog, and the dispatcher.
func (s *Scheduler) Start() {
	for _, sv := range s.sups {
		s.wg.Add(1)
		go sv.supervise()
	}
	s.wg.Add(2)
	go s.watchdog()
	go s.dispatch()
}

// Items is the merged output stream. It is closed when every source is
// finished (done, quarantined, or stopped) and the buffers are drained,
// or when the scheduler is stopped.
func (s *Scheduler) Items() <-chan Item { return s.out }

// Stop cancels every source and waits for all scheduler goroutines.
// Buffered, undispatched items are discarded (they were never consumed,
// so cursors never covered them).
func (s *Scheduler) Stop() {
	s.once.Do(func() {
		s.cancel()
		s.cond.Broadcast()
		s.wg.Wait()
	})
}

// Snapshot reports every supervisor's externally visible state, in
// configuration order.
func (s *Scheduler) Snapshot() []SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SupervisorStats, len(s.sups))
	for i, sv := range s.sups {
		st := SupervisorStats{
			ID:          sv.spec.ID,
			Kind:        string(sv.spec.Kind),
			State:       State(sv.state.Load()).String(),
			Received:    sv.received.Load(),
			ParseErrors: sv.parseErrors.Load(),
			Emitted:     sv.emitted.Load(),
			Panics:      sv.panics.Load(),
			Restarts:    sv.restarts.Load(),
			Stalls:      sv.stalls.Load(),
			Buffered:    len(sv.buf),
			Cursor:      sv.cursor.Load(),
			Epoch:       sv.epoch.Load(),
			LastError:   sv.lastErr,
		}
		if a, ok := sv.addr.Load().(string); ok {
			st.Addr = a
		}
		st.QuarantineReason = sv.quarReason
		out[i] = st
	}
	return out
}

// Addr reports the bound listen address of a UDP source ("" until it
// has bound). Test and logging convenience.
func (s *Scheduler) Addr(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sv := range s.sups {
		if sv.spec.ID == id {
			if a, ok := sv.addr.Load().(string); ok {
				return a
			}
			return ""
		}
	}
	return ""
}

// Supervisor owns one source: its runner, its restart loop, its
// lifecycle state, and its bounded buffer.
type Supervisor struct {
	s    *Scheduler
	idx  int
	spec Spec
	run  runner

	// Guarded by s.mu.
	buf        []Item
	lastErr    string
	quarReason string
	cancelRun  context.CancelFunc

	state     atomic.Int32
	stallFlag atomic.Bool
	lastBeat  atomic.Int64 // unix nanos of last progress heartbeat
	gen       atomic.Uint64

	received, parseErrors, emitted atomic.Uint64
	panics, restarts, stalls       atomic.Uint64
	cursor                         atomic.Int64
	epoch                          atomic.Uint64
	addr                           atomic.Value // string
}

func (sv *Supervisor) setState(st State) {
	sv.state.Store(int32(st))
	sv.s.cond.Broadcast()
}

// waiting reports whether the arrival-order merge should hold for this
// source's next datagram: it is (or will again be) producing.
func (sv *Supervisor) waiting() bool {
	switch State(sv.state.Load()) {
	case StateStarting, StateHealthy, StateBackoff:
		return true
	}
	return false
}

// supervise is the per-source restart loop: run the adapter, classify
// the outcome, back off, try again — or park the source for good.
func (sv *Supervisor) supervise() {
	defer sv.s.wg.Done()
	tun := sv.s.tun
	backoff := tun.BackoffMin
	failStreak := 0
	var epochBase uint64

	for {
		if sv.s.ctx.Err() != nil {
			sv.setState(StateStopped)
			return
		}
		gen := sv.gen.Add(1)
		runCtx, cancel := context.WithCancel(sv.s.ctx)
		sv.s.mu.Lock()
		sv.cancelRun = cancel
		sv.s.mu.Unlock()
		sv.setState(StateStarting)
		sv.lastBeat.Store(time.Now().UnixNano())
		before := sv.emitted.Load()

		t := &task{sv: sv, ctx: runCtx, gen: gen, epochBase: epochBase}
		resCh := make(chan error, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					resCh <- fmt.Errorf("runner panic: %v", p)
				}
			}()
			resCh <- sv.run.run(t, sv.cursor.Load())
		}()

		var err error
		select {
		case err = <-resCh:
		case <-runCtx.Done():
			// Cancelled (watchdog stall or shutdown): grace-wait for the
			// runner to notice, then abandon the goroutine — a read so
			// wedged that cancel cannot reach it is exactly the failure
			// the watchdog exists for. Stale-generation checks in the
			// task keep an abandoned runner from ever delivering again.
			grace := tun.StallAfter
			if grace > time.Second {
				grace = time.Second
			}
			select {
			case err = <-resCh:
			case <-time.After(grace):
				err = errors.New("runner unresponsive after cancel")
			}
		}
		cancel()
		sv.s.mu.Lock()
		sv.cancelRun = nil
		sv.s.mu.Unlock()

		stalled := sv.stallFlag.Swap(false)
		progressed := sv.emitted.Load() > before
		// The next run's epochs must exceed anything already emitted:
		// a restarted tailer counts reopens from zero again.
		epochBase = sv.epoch.Load() + 1

		switch {
		case sv.s.ctx.Err() != nil:
			sv.setState(StateStopped)
			return
		case err == nil:
			sv.setState(StateDone)
			return
		}

		sv.restarts.Add(1)
		if stalled {
			sv.stalls.Add(1)
			err = fmt.Errorf("stalled: no progress within %v (%v)", tun.StallAfter, err)
		}
		sv.s.mu.Lock()
		sv.lastErr = err.Error()
		sv.s.mu.Unlock()

		if progressed {
			failStreak, backoff = 0, tun.BackoffMin
		}
		failStreak++
		if failStreak >= tun.MaxRestarts {
			sv.s.mu.Lock()
			sv.quarReason = fmt.Sprintf("%d consecutive failures without progress; last: %s",
				failStreak, err.Error())
			sv.s.mu.Unlock()
			sv.setState(StateQuarantined)
			return
		}

		sv.setState(StateBackoff)
		if !sleepCtx(sv.s.ctx, backoff) {
			sv.setState(StateStopped)
			return
		}
		if backoff *= 2; backoff > tun.BackoffMax {
			backoff = tun.BackoffMax
		}
	}
}

// task is the handle one run of a runner reports through. Every method
// is generation-checked so a run the supervisor has abandoned (or
// replaced) can no longer touch shared state.
type task struct {
	sv        *Supervisor
	ctx       context.Context
	gen       uint64
	epochBase uint64
}

func (t *task) live() bool { return t.sv.gen.Load() == t.gen }

// beat records a progress heartbeat: the source is alive even if no
// datagram arrived (an idle UDP socket, a tail at end of log).
func (t *task) beat() {
	if !t.live() {
		return
	}
	t.sv.lastBeat.Store(time.Now().UnixNano())
	if State(t.sv.state.Load()) == StateStarting {
		t.sv.setState(StateHealthy)
	}
}

// recv counts one datagram read from the input (before parsing).
func (t *task) recv() {
	if t.live() {
		t.sv.received.Add(1)
	}
}

// parseError counts one unparseable datagram. It beats: a feed
// yielding garbage is alive — bad content is accounting, not failure.
func (t *task) parseError() {
	if !t.live() {
		return
	}
	t.sv.parseErrors.Add(1)
	t.beat()
}

// setAddr publishes the source's bound listen address.
func (t *task) setAddr(a string) {
	if t.live() {
		t.sv.addr.Store(a)
	}
}

// deliver hands one parsed datagram to the dispatcher, blocking while
// the source's buffer is full. It returns false when the run should
// stop (cancelled or superseded). A panic while delivering — the
// per-datagram containment boundary — quarantines that datagram to the
// poison sink and keeps the source running.
func (t *task) deliver(dg *sflow.Datagram, at simclock.Time, cursor int64, relEpoch uint64) (ok bool) {
	sv := t.sv
	defer func() {
		if p := recover(); p != nil {
			sv.panics.Add(1)
			if sv.s.cfg.Poison != nil {
				sv.s.cfg.Poison(sv.spec.ID, dg, p)
			}
			ok = true // the entry is quarantined; the source lives on
		}
	}()
	if !t.live() {
		return false
	}
	if fp := sv.s.cfg.FaultPanic; fp != nil && fp(sv.spec.ID, dg) {
		panic(fmt.Sprintf("ingest: injected delivery fault (%s)", sv.spec.ID))
	}
	t.beat()

	epoch := t.epochBase + relEpoch
	it := Item{
		SourceID: sv.spec.ID,
		Kind:     sv.spec.Kind,
		Durable:  sv.spec.Durable(),
		Dg:       dg,
		At:       at,
		Cursor:   cursor,
		Epoch:    epoch,
	}
	s := sv.s
	s.mu.Lock()
	for len(sv.buf) >= s.tun.BufLen {
		if t.ctx.Err() != nil || !t.live() {
			s.mu.Unlock()
			return false
		}
		s.cond.Wait()
	}
	sv.buf = append(sv.buf, it)
	s.mu.Unlock()
	sv.emitted.Add(1)
	sv.cursor.Store(cursor)
	sv.epoch.Store(epoch)
	s.cond.Broadcast()
	return true
}

// dispatch is the single consumer of every source buffer: it asks the
// policy who goes next and forwards that source's head item.
func (s *Scheduler) dispatch() {
	defer s.wg.Done()
	defer close(s.out)
	var waitStart time.Time

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.ctx.Err() != nil {
			return
		}
		forced := !waitStart.IsZero() && time.Since(waitStart) > s.tun.StallAfter
		idx := s.pol.pick(s.sups, forced)
		if idx >= 0 {
			sv := s.sups[idx]
			it := sv.buf[0]
			sv.buf = sv.buf[1:]
			if len(sv.buf) == 0 {
				sv.buf = nil
			}
			waitStart = time.Time{}
			s.cond.Broadcast() // a buffer slot freed; wake blocked producers
			s.mu.Unlock()
			select {
			case s.out <- it:
				s.mu.Lock()
			case <-s.ctx.Done():
				s.mu.Lock()
				return
			}
			continue
		}

		buffered := false
		parked := true
		for _, sv := range s.sups {
			if len(sv.buf) > 0 {
				buffered = true
			}
			if sv.waiting() {
				parked = false
			}
		}
		if !buffered && parked {
			return // every source finished and drained: end of stream
		}
		if buffered && waitStart.IsZero() {
			// The policy is holding buffered data back (arrival-order
			// merge waiting on a lagging source); bound that wait.
			waitStart = time.Now()
		}
		s.cond.Wait()
	}
}

// watchdog restarts sources that stopped making progress: running
// state, empty buffer (so it is not consumer backpressure), and no
// heartbeat within the stall deadline.
func (s *Scheduler) watchdog() {
	defer s.wg.Done()
	tick := s.tun.StallAfter / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-tk.C:
		}
		now := time.Now().UnixNano()
		s.mu.Lock()
		for _, sv := range s.sups {
			st := State(sv.state.Load())
			if st != StateStarting && st != StateHealthy {
				continue
			}
			if len(sv.buf) > 0 {
				continue // backlogged, not stalled
			}
			if now-sv.lastBeat.Load() <= int64(s.tun.StallAfter) {
				continue
			}
			sv.stallFlag.Store(true)
			if sv.cancelRun != nil {
				sv.cancelRun()
			}
		}
		s.mu.Unlock()
		s.cond.Broadcast() // drive the dispatcher's bounded-wait clock
	}
}

// policy picks which source's head item the dispatcher forwards next.
// Called with the scheduler lock held; returns -1 to wait. forced is
// set when the dispatcher has already waited out the bounded-wait
// deadline: the policy must then release buffered data if it has any.
type policy interface {
	pick(sups []*Supervisor, forced bool) int
}

// roundRobin cycles fairly over sources with buffered datagrams.
type roundRobin struct{ last int }

func (p *roundRobin) pick(sups []*Supervisor, _ bool) int {
	n := len(sups)
	for i := 1; i <= n; i++ {
		idx := (p.last + i) % n
		if len(sups[idx].buf) > 0 {
			p.last = idx
			return idx
		}
	}
	return -1
}

// backlogWeighted always drains the deepest buffer first.
type backlogWeighted struct{}

func (backlogWeighted) pick(sups []*Supervisor, _ bool) int {
	best, bestN := -1, 0
	for i, sv := range sups {
		if n := len(sv.buf); n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// arrivalOrder emits datagrams in global capture-time order: a k-way
// merge over the source heads. The merge frontier waits until every
// source that may still produce has presented its next datagram —
// unless forced, which bounds how long a lagging source can hold
// everyone else's buffered data back.
type arrivalOrder struct{}

func (arrivalOrder) pick(sups []*Supervisor, forced bool) int {
	best := -1
	var bestAt simclock.Time
	for i, sv := range sups {
		if len(sv.buf) == 0 {
			if sv.waiting() && !forced {
				return -1 // hold the merge for this source's next datagram
			}
			continue
		}
		if at := sv.buf[0].At; best < 0 || at.Before(bestAt) {
			best, bestAt = i, at
		}
	}
	return best
}
