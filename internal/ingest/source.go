// Source adapters: one runner per Spec kind, each a blocking read loop
// driven by its supervisor. Runners report through the task handle —
// recv/parseError/beat/deliver — and return nil when a finite input is
// drained, or an error when the input failed (the supervisor decides
// restart vs quarantine). A runner must be restartable: run is called
// again after backoff with the cursor of the last datagram actually
// delivered, and must not re-deliver anything at or before it.
package ingest

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"slices"
	"time"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/pcap"
	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// runner is one source adapter. Implementations keep state that must
// survive restarts (a pinned listen address, a built campaign) on the
// receiver; everything per-attempt lives in run.
type runner interface {
	run(t *task, cursor int64) error
}

func newRunner(sp Spec, cfg *Config) runner {
	switch sp.Kind {
	case KindUDP:
		return &udpRunner{sp: sp, cfg: cfg, addr: sp.Addr}
	case KindTail:
		return &tailRunner{sp: sp, cfg: cfg}
	case KindReplay:
		return &replayRunner{sp: sp, cfg: cfg}
	case KindPCAP:
		return &pcapRunner{sp: sp, cfg: cfg}
	default:
		return &synthRunner{sp: sp, cfg: cfg}
	}
}

// sleepCtx sleeps d or until ctx is done; false means ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-tm.C:
		return true
	}
}

// countingReader counts bytes consumed from the wrapped stream — the
// byte-offset cursor source for replay inputs. It sits above the
// WrapReader fault seam so the cursor always reflects what was really
// consumed, injected short reads included.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.n += int64(m)
	return m, err
}

// udpRunner listens for sFlow datagrams on a UDP socket. It has no
// durable input and no cursor: a datagram that was never read is gone
// (that loss is what the per-agent sequence accounting downstream
// measures). An ephemeral listen address (":0") is pinned to the
// concrete bound address on first bind so restarts rebind the same
// port and senders keep working across a supervisor restart.
type udpRunner struct {
	sp   Spec
	cfg  *Config
	addr string
}

func (u *udpRunner) run(t *task, _ int64) error {
	listen := u.cfg.ListenPacket
	if listen == nil {
		listen = func(a string) (net.PacketConn, error) { return net.ListenPacket("udp", a) }
	}
	conn, err := listen(u.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if u.addr == u.sp.Addr {
		u.addr = conn.LocalAddr().String()
	}
	t.setAddr(conn.LocalAddr().String())
	stop := context.AfterFunc(t.ctx, func() { conn.Close() })
	defer stop()

	// Wake from blocking reads often enough to heartbeat while idle:
	// an idle socket is not a stalled one.
	beatEvery := u.cfg.Tuning.StallAfter / 4
	if beatEvery > 500*time.Millisecond {
		beatEvery = 500 * time.Millisecond
	}
	buf := make([]byte, 1<<16)
	for {
		conn.SetReadDeadline(time.Now().Add(beatEvery))
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if t.ctx.Err() != nil {
				return t.ctx.Err()
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.beat()
				continue
			}
			return err
		}
		t.beat()
		t.recv()
		dg, perr := sflow.ParseDatagram(buf[:n])
		if perr != nil {
			t.parseError()
			continue
		}
		at := simclock.FromTime(time.Now())
		if u.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		}
		if !t.deliver(dg, at, 0, 0) {
			return t.ctx.Err()
		}
	}
}

// tailRunner follows a growing datagram log through sflow.Tailer,
// surviving rotation and truncation. The cursor is the byte offset
// past the last delivered entry in the *current* file incarnation;
// the epoch (Tailer.Reopens, offset by the supervisor's restart base)
// tells the consumer when offsets stopped being comparable.
type tailRunner struct {
	sp  Spec
	cfg *Config
}

func (r *tailRunner) run(t *task, cursor int64) error {
	tl, err := sflow.NewTailer(r.sp.Path, cursor)
	if err != nil {
		return err
	}
	defer tl.Close()

	pollMax := r.cfg.Tuning.StallAfter / 4
	if pollMax > time.Second {
		pollMax = time.Second
	}
	poll := r.cfg.Tuning.BackoffMin
	if poll > pollMax {
		poll = pollMax
	}
	pollMin := poll
	for {
		if t.ctx.Err() != nil {
			return t.ctx.Err()
		}
		at, dg, err := tl.NextEntry()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				t.beat() // idle at end of log, not stalled
				if !sleepCtx(t.ctx, poll) {
					return t.ctx.Err()
				}
				if poll *= 2; poll > pollMax {
					poll = pollMax
				}
				continue
			}
			if errors.Is(err, sflow.ErrDatagram) {
				t.recv()
				t.parseError() // one bad body; the tailer resynced
				continue
			}
			return err // framing gone, or the file went unreadable
		}
		poll = pollMin
		t.recv()
		if r.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		}
		if !t.deliver(dg, at, tl.Offset(), tl.Reopens()) {
			return t.ctx.Err()
		}
	}
}

// replayRunner reads a datagram log start to end and completes. The
// cursor is the byte offset past the last delivered entry; on restart
// it skips forward by draining the (possibly fault-wrapped) stream so
// injected faults see the same byte positions a fresh run would.
type replayRunner struct {
	sp  Spec
	cfg *Config
}

func (r *replayRunner) run(t *task, cursor int64) error {
	f, err := os.Open(r.sp.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	var src io.Reader = f
	if r.cfg.WrapReader != nil {
		src = r.cfg.WrapReader(r.sp.ID, src)
	}
	cr := &countingReader{r: src}
	lr, err := sflow.NewLogReader(cr)
	if err != nil {
		return err
	}
	if cursor > cr.n {
		if _, err := io.CopyN(io.Discard, cr, cursor-cr.n); err != nil {
			return fmt.Errorf("ingest: %s: seeking to cursor %d: %w", r.sp.ID, cursor, err)
		}
	}
	for {
		if t.ctx.Err() != nil {
			return t.ctx.Err()
		}
		at, dg, err := lr.NextEntry()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // drained
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return fmt.Errorf("ingest: %s: log ends mid-entry: %w", r.sp.ID, err)
			}
			if errors.Is(err, sflow.ErrDatagram) {
				t.recv()
				t.parseError() // one bad body; the reader resynced
				continue
			}
			return err // framing error or stream fault
		}
		t.beat()
		t.recv()
		if r.cfg.TimeFromUptime {
			at = simclock.Time(dg.Uptime)
		}
		if !t.deliver(dg, at, cr.n, 0) {
			return t.ctx.Err()
		}
	}
}

// batcher groups time-ordered flow samples into per-second datagrams,
// mirroring sflow.LogWriter's canonical batching (flush on time change
// or maxSamples) so pcap and synthetic inputs produce the same datagram
// stream shape a recorded log would. Batching is a pure function of the
// sample sequence, so datagram boundaries — and with them Seq numbers
// and count cursors — reproduce exactly across restarts.
type batcher struct {
	agent [4]byte
	cur   sflow.Datagram
	curAt simclock.Time
	dgSeq uint32
	n     int64 // samples added so far
}

const batchMaxSamples = 64 // one datagram per arrival second, capped

// add appends one sample; when that forces the previous batch out, the
// flushed datagram, its time, and the sample count through its last
// sample are returned.
func (b *batcher) add(s sflow.FlowSample, at simclock.Time) (*sflow.Datagram, simclock.Time, int64) {
	var dg *sflow.Datagram
	var dgAt simclock.Time
	var dgN int64
	if len(b.cur.Samples) > 0 && (at != b.curAt || len(b.cur.Samples) >= batchMaxSamples) {
		dg, dgAt, dgN = b.flush()
	}
	b.curAt = at
	b.cur.Samples = append(b.cur.Samples, s)
	b.n++
	return dg, dgAt, dgN
}

// flush emits any buffered samples as a datagram.
func (b *batcher) flush() (*sflow.Datagram, simclock.Time, int64) {
	if len(b.cur.Samples) == 0 {
		return nil, 0, 0
	}
	b.dgSeq++
	dg := &sflow.Datagram{
		Agent:   b.agent,
		Seq:     b.dgSeq,
		Uptime:  uint32(b.curAt),
		Samples: b.cur.Samples,
	}
	b.cur.Samples = nil // the flushed datagram owns the slice
	return dg, b.curAt, b.n
}

// pcapRunner reads a classic pcap capture, batches frames into
// per-second datagrams, and completes. The cursor is the count of
// frames delivered; restart re-runs the deterministic batching and
// skips datagrams whose last frame is at or before the cursor, so Seq
// numbers continue seamlessly.
type pcapRunner struct {
	sp  Spec
	cfg *Config
}

func (p *pcapRunner) run(t *task, cursor int64) error {
	f, err := os.Open(p.sp.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	var src io.Reader = f
	if p.cfg.WrapReader != nil {
		src = p.cfg.WrapReader(p.sp.ID, src)
	}
	pr, err := pcap.NewReader(bufio.NewReader(src))
	if err != nil {
		return err
	}
	// A capture is a full packet record, not a sampled feed: rate 1.
	b := &batcher{agent: p.sp.agent()}
	emit := func(dg *sflow.Datagram, at simclock.Time, n int64) bool {
		if dg == nil || n <= cursor {
			return true // nil flush, or already delivered before restart
		}
		t.recv()
		return t.deliver(dg, at, n, 0)
	}
	for {
		if t.ctx.Err() != nil {
			return t.ctx.Err()
		}
		pkt, err := pr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				if !emit(b.flush()) {
					return t.ctx.Err()
				}
				return nil
			}
			return err
		}
		t.beat()
		frame := pkt.Data
		s := sflow.FlowSample{
			Seq:      uint32(b.n + 1),
			SourceID: 1,
			Rate:     1,
			Pool:     uint32(b.n + 1),
			FrameLen: uint32(pkt.Orig),
			Header:   frame,
		}
		if !emit(b.add(s, pkt.Time)) {
			return t.ctx.Err()
		}
	}
}

// synthRunner generates sampled campaign traffic — the ecosystem
// generator's wire-level day stream, arrival-ordered and batched into
// datagrams — then completes. Generation is a pure function of
// (scale, seed, day), so the cursor is a plain sample count: restart
// regenerates and skips what was already delivered. The campaign is
// built once and kept across restarts (construction dominates).
type synthRunner struct {
	sp  Spec
	cfg *Config
	gen *ecosystem.Generator
}

func (r *synthRunner) run(t *task, cursor int64) error {
	if r.gen == nil {
		cfg := ecosystem.DefaultCampaignConfig(r.sp.Scale)
		cfg.Zones.ProceduralNames = 20_000
		cfg.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: r.sp.Seed}
		r.gen = ecosystem.NewGenerator(ecosystem.NewCampaign(cfg), r.sp.Seed)
	}
	b := &batcher{agent: r.sp.agent()}
	emit := func(dg *sflow.Datagram, at simclock.Time, n int64) bool {
		if dg == nil || n <= cursor {
			return true
		}
		t.recv()
		return t.deliver(dg, at, n, 0)
	}
	day := simclock.MeasurementStart
	for d := 0; d < r.sp.Days; d++ {
		if t.ctx.Err() != nil {
			return t.ctx.Err()
		}
		recs := slices.Clone(r.gen.WireDay(day).IXP)
		slices.SortStableFunc(recs, func(a, b ecosystem.TaggedRecord) int {
			return int(a.Rec.Time.Sub(b.Rec.Time))
		})
		t.beat()
		for _, tr := range recs {
			s := sflow.FlowSample{
				Seq:      uint32(tr.Rec.Seq),
				SourceID: 1,
				Rate:     sflow.DefaultRate,
				Pool:     uint32(tr.Rec.Seq) * sflow.DefaultRate,
				Input:    tr.Ingress,
				FrameLen: uint32(tr.Rec.FrameLen),
				Header:   tr.Rec.Frame,
			}
			if !emit(b.add(s, tr.Rec.Time)) {
				return t.ctx.Err()
			}
		}
		day = day.Add(simclock.Day)
	}
	if !emit(b.flush()) {
		return t.ctx.Err()
	}
	return nil
}
