package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"dnsamp/internal/sflow"
	"dnsamp/internal/simclock"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		id   string
		kind Kind
	}{
		{"udp://127.0.0.1:6343", "udp://127.0.0.1:6343", KindUDP},
		{"udp://:0", "udp://:0", KindUDP},
		{"tail:/var/log/sflow.log", "tail:/var/log/sflow.log", KindTail},
		{"replay:rec.sflow", "replay:rec.sflow", KindReplay},
		{"pcap:cap.pcap", "pcap:cap.pcap", KindPCAP},
		{"synthetic", "synthetic:scale=0.05,days=1,seed=11", KindSynthetic},
		{"synthetic:scale=0.1,seed=3", "synthetic:scale=0.1,days=1,seed=3", KindSynthetic},
		{" tail:x ", "tail:x", KindTail},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if sp.ID != c.id || sp.Kind != c.kind {
			t.Errorf("ParseSpec(%q) = {ID:%q Kind:%q}, want {%q %q}", c.in, sp.ID, sp.Kind, c.id, c.kind)
		}
		// The ID must be stable: re-parsing it reproduces itself.
		sp2, err := ParseSpec(sp.ID)
		if err != nil || sp2.ID != sp.ID {
			t.Errorf("ParseSpec(%q) not a fixpoint: %+v, %v", sp.ID, sp2, err)
		}
	}
	for _, bad := range []string{
		"", "x", "udp://nope", "tail:", "ftp:whatever",
		"synthetic:scale=-1", "synthetic:bogus=1", "synthetic:days=0",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
}

func TestParseSpecs(t *testing.T) {
	in := "# collectors\nudp://127.0.0.1:6343\n\n  replay:a.sflow\n"
	specs, err := ParseSpecs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Kind != KindUDP || specs[1].Kind != KindReplay {
		t.Fatalf("ParseSpecs = %+v", specs)
	}
	if _, err := ParseSpecs(strings.NewReader("udp://\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("expected line-numbered error, got %v", err)
	}
}

// fakeRunner delivers a fixed ascending item schedule, skipping
// anything at or before the resume cursor, then returns errAfter.
type fakeRunner struct {
	at       []simclock.Time
	errAfter error
}

func (f *fakeRunner) run(t *task, cursor int64) error {
	for i, at := range f.at {
		c := int64(i + 1)
		if c <= cursor {
			continue
		}
		dg := &sflow.Datagram{Agent: [4]byte{203, 0, 113, byte(t.sv.idx)}, Seq: uint32(c)}
		if !t.deliver(dg, at, c, 0) {
			return t.ctx.Err()
		}
	}
	return f.errAfter
}

// failRunner always fails without delivering anything.
type failRunner struct{ n int }

func (f *failRunner) run(t *task, _ int64) error {
	f.n++
	return fmt.Errorf("boom %d", f.n)
}

// wedgeRunner heartbeats once and then blocks on a channel, ignoring
// cancellation — an uninterruptible read, the watchdog's prey.
type wedgeRunner struct{ release chan struct{} }

func (w *wedgeRunner) run(t *task, _ int64) error {
	t.beat()
	<-w.release
	return errors.New("released")
}

// idleRunner stays healthy forever without ever delivering: a live,
// silent feed.
type idleRunner struct{}

func (idleRunner) run(t *task, _ int64) error {
	for {
		t.beat()
		if !sleepCtx(t.ctx, time.Millisecond) {
			return t.ctx.Err()
		}
	}
}

// fakeSched builds a scheduler over placeholder replay specs and then
// swaps in the given runners (the files are never opened).
func fakeSched(t *testing.T, cfg Config, runners ...runner) *Scheduler {
	t.Helper()
	for i := range runners {
		cfg.Specs = append(cfg.Specs, Spec{ID: fmt.Sprintf("replay:fake-%d", i), Kind: KindReplay})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runners {
		s.sups[i].run = r
	}
	t.Cleanup(s.Stop)
	return s
}

func collectItems(t *testing.T, s *Scheduler, atLeast int, timeout time.Duration) []Item {
	t.Helper()
	var items []Item
	deadline := time.After(timeout)
	for {
		select {
		case it, ok := <-s.Items():
			if !ok {
				return items
			}
			items = append(items, it)
		case <-deadline:
			if len(items) >= atLeast {
				return items
			}
			t.Fatalf("timeout with %d items (want >= %d)", len(items), atLeast)
		}
	}
}

func fastTuning() Tuning {
	return Tuning{BufLen: 256, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		StallAfter: 40 * time.Millisecond, MaxRestarts: 3}
}

// TestArrivalMerge: three time-sorted sources merge into one globally
// time-sorted stream under the arrival policy, regardless of which
// source's goroutine runs first.
func TestArrivalMerge(t *testing.T) {
	mk := func(start, step, n int) *fakeRunner {
		f := &fakeRunner{}
		for i := 0; i < n; i++ {
			f.at = append(f.at, simclock.Time(start+i*step))
		}
		return f
	}
	// Interleaved, collectively dense, no cross-source ties.
	s := fakeSched(t, Config{Policy: PolicyArrival, Tuning: fastTuning()},
		mk(100, 3, 40), mk(101, 3, 40), mk(102, 3, 40))
	s.Start()
	items := collectItems(t, s, 120, 5*time.Second)
	if len(items) != 120 {
		t.Fatalf("got %d items, want 120", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].At.Before(items[i-1].At) {
			t.Fatalf("out of order at %d: %v after %v (src %s)", i, items[i].At, items[i-1].At, items[i].SourceID)
		}
	}
}

// TestArrivalBoundedWait: a live-but-silent source cannot hold the
// merge hostage — after the bounded wait, buffered datagrams flow.
func TestArrivalBoundedWait(t *testing.T) {
	f := &fakeRunner{at: []simclock.Time{10, 20, 30}}
	s := fakeSched(t, Config{Policy: PolicyArrival, Tuning: fastTuning()}, f, idleRunner{})
	s.Start()
	deadline := time.After(3 * time.Second)
	for got := 0; got < 3; {
		select {
		case _, ok := <-s.Items():
			if !ok {
				t.Fatal("stream closed early")
			}
			got++
		case <-deadline:
			t.Fatalf("merge still held after 3s with %d items released", got)
		}
	}
}

// TestRoundRobinDrainsAll: both sources' items all arrive, per-source
// order preserved.
func TestRoundRobinDrainsAll(t *testing.T) {
	a := &fakeRunner{at: []simclock.Time{1, 2, 3, 4, 5}}
	b := &fakeRunner{at: []simclock.Time{6, 7, 8}}
	s := fakeSched(t, Config{Tuning: fastTuning()}, a, b)
	s.Start()
	items := collectItems(t, s, 8, 5*time.Second)
	var gotA, gotB []int64
	for _, it := range items {
		if it.SourceID == "replay:fake-0" {
			gotA = append(gotA, it.Cursor)
		} else {
			gotB = append(gotB, it.Cursor)
		}
	}
	if !slices.Equal(gotA, []int64{1, 2, 3, 4, 5}) || !slices.Equal(gotB, []int64{1, 2, 3}) {
		t.Fatalf("per-source order broken: a=%v b=%v", gotA, gotB)
	}
}

// TestQuarantineAfterRepeatedFailure: a source that keeps failing
// without progress is parked with a reason; the stream still ends
// cleanly and a healthy neighbour is untouched.
func TestQuarantineAfterRepeatedFailure(t *testing.T) {
	good := &fakeRunner{at: []simclock.Time{1, 2, 3}}
	s := fakeSched(t, Config{Tuning: fastTuning()}, good, &failRunner{})
	s.Start()
	items := collectItems(t, s, 3, 5*time.Second)
	if len(items) != 3 {
		t.Fatalf("healthy source delivered %d items, want 3", len(items))
	}
	snap := s.Snapshot()
	if snap[0].State != "done" {
		t.Errorf("good source state = %s, want done", snap[0].State)
	}
	bad := snap[1]
	if bad.State != "quarantined" {
		t.Fatalf("bad source state = %s, want quarantined (%+v)", bad.State, bad)
	}
	if bad.Restarts < 2 || bad.QuarantineReason == "" || !strings.Contains(bad.QuarantineReason, "boom") {
		t.Errorf("quarantine detail wrong: %+v", bad)
	}
}

// TestStallWatchdog: a wedged source (uninterruptible read, no
// heartbeat) is stall-restarted, abandoned when cancel cannot reach
// it, and finally quarantined — without stopping the scheduler.
func TestStallWatchdog(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	tun := fastTuning()
	tun.MaxRestarts = 2
	s := fakeSched(t, Config{Tuning: tun}, &wedgeRunner{release: release})
	s.Start()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Snapshot()[0]
		if snap.State == "quarantined" {
			if snap.Stalls < 1 {
				t.Fatalf("no stalls recorded: %+v", snap)
			}
			if !strings.Contains(snap.QuarantineReason, "stalled") {
				t.Fatalf("reason %q does not mention stall", snap.QuarantineReason)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never quarantined: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeliverPanicContainment: a panic while handling one datagram
// costs exactly that datagram — poisoned with its source ID — and the
// source keeps delivering.
func TestDeliverPanicContainment(t *testing.T) {
	var mu sync.Mutex
	var poisoned []string
	f := &fakeRunner{at: []simclock.Time{1, 2, 3, 4}}
	cfg := Config{
		Tuning: fastTuning(),
		FaultPanic: func(id string, dg *sflow.Datagram) bool {
			return dg.Seq == 2
		},
		Poison: func(id string, dg *sflow.Datagram, cause any) {
			mu.Lock()
			poisoned = append(poisoned, fmt.Sprintf("%s#%d", id, dg.Seq))
			mu.Unlock()
		},
	}
	s := fakeSched(t, cfg, f)
	s.Start()
	items := collectItems(t, s, 3, 5*time.Second)
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3 (one poisoned)", len(items))
	}
	mu.Lock()
	defer mu.Unlock()
	if !slices.Equal(poisoned, []string{"replay:fake-0#2"}) {
		t.Fatalf("poisoned = %v", poisoned)
	}
	snap := s.Snapshot()[0]
	if snap.Panics != 1 || snap.Emitted != 3 {
		t.Fatalf("stats: %+v", snap)
	}
}

// writeTestLog writes a datagram log with n one-sample entries at
// 1-second spacing and returns its path.
func writeTestLog(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	lw, err := sflow.NewLogWriter(&buf, [4]byte{198, 51, 100, 7}, sflow.DefaultRate)
	if err != nil {
		t.Fatal(err)
	}
	frame := bytes.Repeat([]byte{0xab}, 60)
	for i := 0; i < n; i++ {
		rec := sflow.Record{Time: simclock.Time(1000 + i), Frame: frame, FrameLen: 60, Seq: uint64(i + 1)}
		if err := lw.Add(rec, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rec.sflow")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayResume: a replay source restarted from a mid-file cursor
// delivers exactly the remainder, nothing twice.
func TestReplayResume(t *testing.T) {
	const n = 20
	path := writeTestLog(t, n)
	sp, err := ParseSpec("replay:" + path)
	if err != nil {
		t.Fatal(err)
	}

	runAll := func(cursors map[string]int64) []Item {
		s, err := New(Config{Specs: []Spec{sp}, Tuning: fastTuning(), Cursors: cursors})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		s.Start()
		return collectItems(t, s, 0, 5*time.Second)
	}

	full := runAll(nil)
	if len(full) != n {
		t.Fatalf("full run: %d datagrams, want %d", len(full), n)
	}
	const k = 7
	rest := runAll(map[string]int64{sp.ID: full[k-1].Cursor})
	if len(rest) != n-k {
		t.Fatalf("resumed run: %d datagrams, want %d", len(rest), n-k)
	}
	if rest[0].At != full[k].At || rest[0].Cursor != full[k].Cursor {
		t.Fatalf("resume misaligned: got (%v,%d), want (%v,%d)", rest[0].At, rest[0].Cursor, full[k].At, full[k].Cursor)
	}
	for i, it := range rest {
		if it.Cursor != full[k+i].Cursor {
			t.Fatalf("entry %d: cursor %d, want %d", i, it.Cursor, full[k+i].Cursor)
		}
	}
}

// TestSourceConservation: per-source accounting closes — every datagram
// read is a parse error, a poisoned panic, or an emitted item.
func TestSourceConservation(t *testing.T) {
	path := writeTestLog(t, 10)
	// Corrupt the body of one entry in place: flip bytes well inside
	// the first datagram's payload (past the 12-byte file header and
	// the 12-byte entry header).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 40; i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sp, _ := ParseSpec("replay:" + path)
	s, err := New(Config{Specs: []Spec{sp}, Tuning: fastTuning()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Start()
	items := collectItems(t, s, 0, 5*time.Second)
	snap := s.Snapshot()[0]
	if snap.State != "done" {
		t.Fatalf("state = %s, want done (%+v)", snap.State, snap)
	}
	if snap.ParseErrors == 0 {
		t.Fatalf("corruption produced no parse errors: %+v", snap)
	}
	if got := snap.Received; got != snap.ParseErrors+snap.Panics+snap.Emitted {
		t.Fatalf("conservation: received %d != parse %d + panics %d + emitted %d",
			got, snap.ParseErrors, snap.Panics, snap.Emitted)
	}
	if uint64(len(items)) != snap.Emitted {
		t.Fatalf("emitted %d but %d items seen", snap.Emitted, len(items))
	}
}

// TestBacklogPolicy: the deepest buffer drains first.
func TestBacklogPolicy(t *testing.T) {
	a := &fakeRunner{at: []simclock.Time{1}}
	b := &fakeRunner{at: []simclock.Time{2, 3, 4, 5, 6, 7}}
	s := fakeSched(t, Config{Policy: PolicyBacklog, Tuning: fastTuning()}, a, b)
	// Let both runners finish filling their buffers before dispatching
	// so the depth comparison is deterministic.
	for _, sv := range s.sups {
		s.wg.Add(1)
		go sv.supervise()
	}
	waitFor := func(ok func() bool) {
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatal("timeout waiting for buffers")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.sups[0].buf) == 1 && len(s.sups[1].buf) == 6
	})
	s.wg.Add(2)
	go s.watchdog()
	go s.dispatch()
	items := collectItems(t, s, 7, 5*time.Second)
	if len(items) != 7 {
		t.Fatalf("got %d items, want 7", len(items))
	}
	if items[0].SourceID != "replay:fake-1" {
		t.Fatalf("first item from %s, want the deeper source", items[0].SourceID)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no sources: expected error")
	}
	sp, _ := ParseSpec("tail:x")
	if _, err := New(Config{Specs: []Spec{sp, sp}}); err == nil {
		t.Error("duplicate IDs: expected error")
	}
	if _, err := New(Config{Specs: []Spec{sp}, Policy: "wat"}); err == nil {
		t.Error("unknown policy: expected error")
	}
}
