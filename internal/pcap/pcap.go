// Package pcap reads and writes classic libpcap capture files without
// any external dependency, covering what the ingestion pipeline needs:
// Ethernet-linktype captures of UDP/DNS frames, truncated at a
// snaplen, as produced by tcpdump-style tooling at a capture point.
//
// The writer always emits the standard little-endian
// microsecond-resolution format (magic 0xa1b2c3d4, version 2.4). The
// reader additionally accepts big-endian files and the
// nanosecond-resolution magic (0xa1b23c4d), so real captures from
// either byte order ingest directly. The pcapng container is out of
// scope — convert with `tcpdump -r in.pcapng -w out.pcap` (or editcap)
// first.
//
// Reader.Next hands out packets that own their bytes: the data is
// copied out of the internal read buffer, so retaining packets across
// calls is safe — the property the capture pipeline's ingest boundary
// relies on (see sflow.Sampler's frame-aliasing note).
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dnsamp/internal/simclock"
)

// File-format constants.
const (
	magicUsec   = 0xa1b2c3d4 // microsecond timestamps, writer's native
	magicNanos  = 0xa1b23c4d // nanosecond timestamps
	versionMaj  = 2
	versionMin  = 4
	phdrLen     = 16 // per-packet record header
	ghdrLen     = 24 // global file header
	LinkTypeEth = 1  // LINKTYPE_ETHERNET, the only linktype accepted
)

// maxPacketLen bounds the captured length accepted by the reader; it
// is far above any physical snaplen, and keeps corrupt length fields
// from allocating unbounded buffers.
const maxPacketLen = 1 << 18

// ErrFormat is wrapped by every malformed-file failure (bad magic,
// unsupported linktype, oversized or truncated records).
var ErrFormat = errors.New("pcap: malformed capture file")

// Packet is one captured frame.
type Packet struct {
	// Time is the capture timestamp truncated to seconds (the
	// resolution the simulated capture pipeline operates at).
	Time simclock.Time
	// Frac is the sub-second part in the file's native resolution
	// (microseconds or nanoseconds; Nanos on the Reader tells which).
	Frac uint32
	// Orig is the original frame length on the wire.
	Orig int
	// Data is the captured (possibly snaplen-truncated) frame. The
	// packet owns it: it never aliases the reader's buffer.
	Data []byte
}

// Writer emits a classic little-endian microsecond pcap file.
type Writer struct {
	w       io.Writer
	snaplen uint32
	err     error
}

// NewWriter writes the global header for an Ethernet capture truncated
// at snaplen (<= 0 means 65535, tcpdump's default).
func NewWriter(w io.Writer, snaplen int) (*Writer, error) {
	if snaplen <= 0 {
		snaplen = 65535
	}
	le := binary.LittleEndian
	var hdr [ghdrLen]byte
	le.PutUint32(hdr[0:], magicUsec)
	le.PutUint16(hdr[4:], versionMaj)
	le.PutUint16(hdr[6:], versionMin)
	// thiszone and sigfigs stay zero (UTC, no accuracy claim).
	le.PutUint32(hdr[16:], uint32(snaplen))
	le.PutUint32(hdr[20:], LinkTypeEth)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, snaplen: uint32(snaplen)}, nil
}

// WritePacket appends one frame record. data longer than the writer's
// snaplen is clipped (orig still records the full wire length; when
// orig <= 0 it defaults to len(data)).
func (w *Writer) WritePacket(t simclock.Time, usec uint32, orig int, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(data) > int(w.snaplen) {
		data = data[:w.snaplen]
	}
	if orig <= 0 {
		orig = len(data)
	}
	le := binary.LittleEndian
	var hdr [phdrLen]byte
	le.PutUint32(hdr[0:], uint32(int64(t)))
	le.PutUint32(hdr[4:], usec)
	le.PutUint32(hdr[8:], uint32(len(data)))
	le.PutUint32(hdr[12:], uint32(orig))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
	} else if _, err := w.w.Write(data); err != nil {
		w.err = err
	}
	return w.err
}

// Reader streams packets out of a classic pcap file.
type Reader struct {
	r io.Reader
	// Order is the file's byte order, detected from the magic.
	order binary.ByteOrder
	// Nanos reports nanosecond timestamp resolution (magic 0xa1b23c4d).
	Nanos bool
	// Snaplen is the capture truncation length declared in the header.
	Snaplen int

	buf [phdrLen]byte
}

// NewReader parses the global header. Only Ethernet linktype files are
// accepted: the capture pipeline decodes Ethernet/IPv4/UDP frames.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [ghdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short global header (%v)", ErrFormat, err)
	}
	rd := &Reader{r: r}
	le, be := binary.ByteOrder(binary.LittleEndian), binary.ByteOrder(binary.BigEndian)
	switch {
	case le.Uint32(hdr[:4]) == magicUsec:
		rd.order = le
	case be.Uint32(hdr[:4]) == magicUsec:
		rd.order = be
	case le.Uint32(hdr[:4]) == magicNanos:
		rd.order, rd.Nanos = le, true
	case be.Uint32(hdr[:4]) == magicNanos:
		rd.order, rd.Nanos = be, true
	default:
		return nil, fmt.Errorf("%w: bad magic %#x (pcapng? convert with tcpdump -r in -w out.pcap)",
			ErrFormat, le.Uint32(hdr[:4]))
	}
	if maj := rd.order.Uint16(hdr[4:6]); maj != versionMaj {
		return nil, fmt.Errorf("%w: version %d.%d", ErrFormat, maj, rd.order.Uint16(hdr[6:8]))
	}
	rd.Snaplen = int(rd.order.Uint32(hdr[16:20]))
	if lt := rd.order.Uint32(hdr[20:24]); lt != LinkTypeEth {
		return nil, fmt.Errorf("%w: linktype %d (want Ethernet)", ErrFormat, lt)
	}
	return rd, nil
}

// Next reads the next packet. It returns io.EOF at a clean end of file
// and an ErrFormat-wrapped error when the file stops mid-record or a
// length field is implausible.
func (r *Reader) Next() (Packet, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: truncated record header (%v)", ErrFormat, err)
	}
	incl := int(r.order.Uint32(r.buf[8:12]))
	orig := int(r.order.Uint32(r.buf[12:16]))
	if incl > maxPacketLen {
		return Packet{}, fmt.Errorf("%w: %d-byte record", ErrFormat, incl)
	}
	data := make([]byte, incl) // fresh per packet: the packet owns it
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: truncated packet data (%v)", ErrFormat, err)
	}
	return Packet{
		Time: simclock.Time(int64(r.order.Uint32(r.buf[0:4]))),
		Frac: r.order.Uint32(r.buf[4:8]),
		Orig: orig,
		Data: data,
	}, nil
}
