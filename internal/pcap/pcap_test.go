package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/netmodel"
	"dnsamp/internal/simclock"
)

var update = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

// dnsFrames builds a deterministic set of DNS-over-UDP frames, the
// traffic shape the ingestion pipeline decodes.
func dnsFrames() []Packet {
	mk := func(i int, name string, qtype dnswire.Type, resp bool) []byte {
		var m *dnswire.Message
		q := dnswire.NewQuery(uint16(0x1000+i), name, qtype, 4096)
		if resp {
			m = dnswire.NewResponse(q)
		} else {
			m = q
		}
		eth := netmodel.Ethernet{
			Dst: netmodel.MAC{2, 0, 0, 0, 0, 1},
			Src: netmodel.MAC{2, 0, 0, 0, 0, byte(2 + i)},
		}
		ip := netmodel.IPv4{
			TTL: 64,
			Src: netip.AddrFrom4([4]byte{198, 51, 100, byte(1 + i)}),
			Dst: netip.AddrFrom4([4]byte{203, 0, 113, 53}),
		}
		udp := netmodel.UDP{SrcPort: uint16(40000 + i), DstPort: 53}
		if resp {
			udp.SrcPort, udp.DstPort = 53, uint16(40000+i)
		}
		return netmodel.EncodeUDPPacket(eth, ip, udp, dnswire.Encode(m))
	}
	base := simclock.MeasurementStart
	var pkts []Packet
	for i, f := range [][]byte{
		mk(0, "example.org.", dnswire.TypeA, false),
		mk(1, "example.org.", dnswire.TypeA, true),
		mk(2, "peacecorps.gov.", dnswire.TypeANY, false),
		mk(3, "isc.org.", dnswire.TypeTXT, true),
	} {
		pkts = append(pkts, Packet{
			Time: base.Add(simclock.Duration(i)),
			Frac: uint32(1000 * i),
			Orig: len(f),
			Data: f,
		})
	}
	// One frame longer than the fixture snaplen, to pin truncation.
	long := mk(4, "example.com.", dnswire.TypeA, false)
	long = append(long, make([]byte, 200)...)
	pkts = append(pkts, Packet{Time: base.Add(5), Orig: len(long), Data: long})
	return pkts
}

const fixtureSnaplen = 128

func encodeFixture(t *testing.T) ([]byte, []Packet) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, fixtureSnaplen)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	pkts := dnsFrames()
	for i := range pkts {
		p := &pkts[i]
		if err := w.WritePacket(p.Time, p.Frac, p.Orig, p.Data); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
		if len(p.Data) > fixtureSnaplen {
			p.Data = p.Data[:fixtureSnaplen] // what the reader must yield
		}
	}
	return buf.Bytes(), pkts
}

func TestRoundTrip(t *testing.T) {
	enc, want := encodeFixture(t)
	r, err := NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Snaplen != fixtureSnaplen || r.Nanos {
		t.Fatalf("header: snaplen %d nanos %v, want %d/false", r.Snaplen, r.Nanos, fixtureSnaplen)
	}
	for i := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("packet %d mismatch:\nwant %+v\ngot  %+v", i, want[i], got)
		}
		// The decoded frame must still parse as DNS-over-UDP.
		if pkt, err := netmodel.DecodeFrame(got.Data); err != nil {
			t.Fatalf("packet %d: frame no longer decodes: %v", i, err)
		} else if pkt.UDP.SrcPort != 53 && pkt.UDP.DstPort != 53 {
			t.Fatalf("packet %d: not DNS ports", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("trailer: err = %v, want io.EOF", err)
	}
}

// TestBigEndianAndNanos pins the reader's byte-order and resolution
// detection: the same records, hand-encoded big-endian with the
// nanosecond magic, must read back identically.
func TestBigEndianAndNanos(t *testing.T) {
	_, want := encodeFixture(t)
	var buf bytes.Buffer
	be := binary.BigEndian
	var g [ghdrLen]byte
	be.PutUint32(g[0:], magicNanos)
	be.PutUint16(g[4:], versionMaj)
	be.PutUint16(g[6:], versionMin)
	be.PutUint32(g[16:], fixtureSnaplen)
	be.PutUint32(g[20:], LinkTypeEth)
	buf.Write(g[:])
	for _, p := range want {
		var h [phdrLen]byte
		be.PutUint32(h[0:], uint32(int64(p.Time)))
		be.PutUint32(h[4:], p.Frac)
		be.PutUint32(h[8:], uint32(len(p.Data)))
		be.PutUint32(h[12:], uint32(p.Orig))
		buf.Write(h[:])
		buf.Write(p.Data)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !r.Nanos {
		t.Fatal("nanosecond magic not detected")
	}
	for i := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("packet %d differs in big-endian read", i)
		}
	}
}

func TestReaderRejects(t *testing.T) {
	enc, _ := encodeFixture(t)
	if _, err := NewReader(bytes.NewReader(enc[:10])); !errors.Is(err, ErrFormat) {
		t.Errorf("short header: %v", err)
	}
	bad := append([]byte{}, enc...)
	bad[0] = 0x0a // pcapng section header starts 0x0a0d0d0a
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: %v", err)
	}
	wrongLink := append([]byte{}, enc...)
	wrongLink[20] = 101 // LINKTYPE_RAW
	if _, err := NewReader(bytes.NewReader(wrongLink)); !errors.Is(err, ErrFormat) {
		t.Errorf("linktype: %v", err)
	}
	// Truncated mid-record: a clean ErrFormat, not a panic or silent EOF.
	r, err := NewReader(bytes.NewReader(enc[:len(enc)-3]))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = r.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFormat) {
		t.Errorf("truncated record: err = %v, want ErrFormat", err)
	}
	// Oversized length field must fail before allocating.
	huge := append([]byte{}, enc[:ghdrLen]...)
	huge = append(huge, make([]byte, phdrLen)...)
	binary.LittleEndian.PutUint32(huge[ghdrLen+8:], 1<<30)
	r, err = NewReader(bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrFormat) {
		t.Errorf("oversized record: err = %v, want ErrFormat", err)
	}
}

// TestPacketOwnsBytes pins the ingest-boundary contract: packets
// retained across Next calls (and across exhausting the reader) must
// keep their bytes.
func TestPacketOwnsBytes(t *testing.T) {
	enc, want := encodeFixture(t)
	r, err := NewReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var got []Packet
	for {
		p, err := r.Next()
		if err != nil {
			break
		}
		got = append(got, p)
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("packet %d corrupted after reader advanced", i)
		}
	}
}

func FuzzReader(f *testing.F) {
	enc, _ := func() ([]byte, []Packet) {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, 96)
		w.WritePacket(1559347200, 5, 300, bytes.Repeat([]byte{0x42}, 80))
		return buf.Bytes(), nil
	}()
	f.Add(enc)
	f.Add(enc[:ghdrLen])
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			p, err := r.Next()
			if err != nil {
				return // io.EOF or ErrFormat; never a panic
			}
			if len(p.Data) > maxPacketLen {
				t.Fatalf("oversized packet escaped validation: %d", len(p.Data))
			}
		}
	})
}

// TestGoldenPCAP pins the on-disk bytes: the committed fixture must be
// byte-identical to today's writer output and read back to the
// canonical frames.
func TestGoldenPCAP(t *testing.T) {
	path := filepath.Join("testdata", "golden.pcap")
	enc, want := encodeFixture(t)
	if *update {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(disk, enc) {
		t.Fatalf("writer output drifted from the committed fixture (%d vs %d bytes)", len(enc), len(disk))
	}
	r, err := NewReader(bytes.NewReader(disk))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("fixture packet %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("fixture packet %d differs", i)
		}
	}
}
