package eval

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteTable renders the score table as fixed-width text: one row per
// (scenario, grid point), scenario-major in catalog order, grid in
// Points order. The rendering is deterministic — it is the committed
// golden CI diffs against.
func WriteTable(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w,
		"# scenario eval: days=%d scale=%.3f names=%d cseed=%d tseed=%d seed=%d\n",
		res.Params.Days, res.Params.Scale, res.Params.ProceduralNames,
		res.Params.CampaignSeed, res.Params.TrafficSeed, res.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-18s %-7s %6s %7s  %4s %4s %4s  %9s %7s %7s %6s\n",
		"scenario", "kind", "share", "minpkts",
		"tp", "fp", "fn", "precision", "recall", "f1", "ttd"); err != nil {
		return err
	}
	last := ""
	for _, s := range res.Scores {
		if last != "" && s.Scenario != last {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		last = s.Scenario
		ttd := "-"
		if s.TTDDays >= 0 {
			ttd = fmt.Sprintf("%.1f", s.TTDDays)
		}
		if _, err := fmt.Fprintf(w, "%-18s %-7s %6.2f %7d  %4d %4d %4d  %9.3f %7.3f %7.3f %6s\n",
			s.Scenario, s.Kind, s.Thresholds.MinShare, s.Thresholds.MinPackets,
			s.TP, s.FP, s.FN, s.Precision, s.Recall, s.F1, ttd); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full result as indented JSON.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
