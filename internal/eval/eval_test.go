package eval

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dnsamp/internal/scenario"
	"dnsamp/internal/source"
)

var update = flag.Bool("update", false, "rewrite the golden eval table")

// goldenParams are the fixed-seed parameters of the committed golden:
// small enough for CI, large enough that every scenario exercises its
// designed behaviour (pulse-wave ramp, carpet-bomb spray width,
// mid-window confounders).
func goldenParams() scenario.Params {
	return scenario.Params{Days: 6, Scale: 0.03, ProceduralNames: 20_000, CampaignSeed: 1, TrafficSeed: 11}
}

const goldenSeed = 42

// TestGoldenCatalog is the eval-smoke regression gate: the rendered
// score table of the full catalog at fixed params/seed/grid must match
// the committed golden byte for byte. Run with -update to regenerate
// after an intentional detector or catalog change.
func TestGoldenCatalog(t *testing.T) {
	env := scenario.NewEnv(goldenParams())
	res, err := EvalCatalog(env, goldenSeed, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, res); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_catalog.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/eval -run Golden -update`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("eval table drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestGoldenExpectations sanity-checks the catalog's designed contrasts
// independently of exact golden bytes, so a legitimate -update cannot
// silently commit a broken detector: pulse-wave is detected at
// defaults, slow-drip and carpet-bomb only below them, random-subdomain
// never, flash-crowd stays silent, scanner-burst false-positives at
// defaults.
func TestGoldenExpectations(t *testing.T) {
	env := scenario.NewEnv(goldenParams())
	res, err := EvalCatalog(env, goldenSeed, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	at := func(name string, share float64, minpkts int) Score {
		t.Helper()
		for _, s := range res.Scores {
			if s.Scenario == name && s.Thresholds.MinShare == share && s.Thresholds.MinPackets == minpkts {
				return s
			}
		}
		t.Fatalf("no score for %s @ %.2f/%d", name, share, minpkts)
		return Score{}
	}
	if s := at("pulse-wave", 0.9, 10); s.Recall <= 0.5 || s.TTDDays < 1 {
		t.Errorf("pulse-wave at defaults: recall=%.3f ttd=%.1f, want detected with ttd >= 1", s.Recall, s.TTDDays)
	}
	if s := at("slow-drip", 0.9, 10); s.Recall != 0 {
		t.Errorf("slow-drip at defaults: recall=%.3f, want 0 (tuned under MinPackets)", s.Recall)
	}
	if s := at("slow-drip", 0.9, 5); s.Recall != 1 {
		t.Errorf("slow-drip at minpkts=5: recall=%.3f, want 1", s.Recall)
	}
	if s := at("carpet-bomb", 0.9, 10); s.Recall != 0 {
		t.Errorf("carpet-bomb at defaults: recall=%.3f, want 0", s.Recall)
	}
	if s := at("carpet-bomb", 0.9, 5); s.Recall != 1 {
		t.Errorf("carpet-bomb at minpkts=5: recall=%.3f, want 1", s.Recall)
	}
	for _, mp := range res.Grid.MinPackets {
		if s := at("random-subdomain", 0.5, mp); s.Recall != 0 {
			t.Errorf("random-subdomain at minpkts=%d: recall=%.3f, want 0 (blind spot)", mp, s.Recall)
		}
	}
	if s := at("flash-crowd", 0.5, 5); s.FP != 0 {
		t.Errorf("flash-crowd at loosest grid point: %d false positives, want 0", s.FP)
	}
	if s := at("scanner-burst", 0.9, 10); s.FP == 0 {
		t.Errorf("scanner-burst at defaults: no false positive, want >= 1 (large-RRset confounder)")
	}
}

// roundTripParams keep the wire round-trip affordable: the full catalog
// is exported and re-ingested at a 3-day window.
func roundTripParams() scenario.Params {
	return scenario.Params{Days: 3, Scale: 0.02, ProceduralNames: 20_000, CampaignSeed: 1, TrafficSeed: 11}
}

// TestRoundTripSFlow is the export acceptance test: every catalog
// scenario, exported as an sFlow datagram log and re-ingested through
// the capture path, must score identically to the directly built
// source at every grid point.
func TestRoundTripSFlow(t *testing.T) {
	roundTrip(t, true)
}

// TestRoundTripPCAP is the same equivalence through the pcap writer and
// reader (which drop ingress annotations — they must not affect
// scores).
func TestRoundTripPCAP(t *testing.T) {
	roundTrip(t, false)
}

func roundTrip(t *testing.T, viaSFlow bool) {
	env := scenario.NewEnv(roundTripParams())
	opt := Options{Grid: Grid{Shares: []float64{0.5, 0.9}, MinPackets: []int{5, 10}}}
	dir := t.TempDir()
	for _, sc := range scenario.Catalog() {
		bt := env.Build(sc, goldenSeed)
		want := EvalBuilt(bt, opt)

		sp, pp := "", ""
		if viaSFlow {
			sp = filepath.Join(dir, sc.Name+".sflowlog")
		} else {
			pp = filepath.Join(dir, sc.Name+".pcap")
		}
		if _, err := bt.ExportWire(sp, pp); err != nil {
			t.Fatalf("%s: export: %v", sc.Name, err)
		}

		rep := source.NewReplay(nil)
		path := sp + pp // exactly one is non-empty
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if viaSFlow {
			_, err = rep.IngestSFlowLog(f)
		} else {
			_, err = rep.IngestPCAP(f)
		}
		f.Close()
		if err != nil {
			t.Fatalf("%s: ingest: %v", sc.Name, err)
		}

		ingested := *bt
		ingested.Source = rep
		got := EvalBuilt(&ingested, opt)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: scores differ after wire round-trip\n direct: %+v\n ingested: %+v",
				sc.Name, want, got)
		}
	}
}
