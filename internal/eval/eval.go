// Package eval is the adversarial evaluation harness: it runs
// internal/scenario catalog entries through the staged pipeline.Runner,
// sweeps detection Thresholds grids cheaply via per-stage re-Detect
// (one aggregation per scenario, one Detect per grid point), and scores
// detections against the scenario's ground-truth labels as
// precision/recall/F1/time-to-detect.
//
// The harness turns "does it still detect?" into a regression surface:
// a fixed (params, seed, grid) triple yields a deterministic score
// table, committed as a golden and enforced by CI's eval-smoke job.
package eval

import (
	"dnsamp/internal/core"
	"dnsamp/internal/pipeline"
	"dnsamp/internal/scenario"
)

// Grid is the thresholds sweep: every Share x MinPackets combination.
type Grid struct {
	Shares     []float64
	MinPackets []int
}

// DefaultGrid spans the paper's operating point (0.90 / 10) with the
// neighbours that flip the catalog's marginal scenarios: MinPackets 5
// exposes carpet-bomb and slow-drip, 20 starves pulse-wave.
func DefaultGrid() Grid {
	return Grid{Shares: []float64{0.50, 0.90}, MinPackets: []int{5, 10, 20}}
}

// Points enumerates the grid in report order (share-major).
func (g Grid) Points() []core.Thresholds {
	var out []core.Thresholds
	for _, s := range g.Shares {
		for _, mp := range g.MinPackets {
			out = append(out, core.Thresholds{MinShare: s, MinPackets: mp})
		}
	}
	return out
}

// Score is one (scenario, thresholds) cell of the evaluation table.
type Score struct {
	Scenario   string          `json:"scenario"`
	Kind       string          `json:"kind"`
	Thresholds core.Thresholds `json:"thresholds"`

	// TP/FP/FN count (victim, day) pairs against ground truth.
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`

	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`

	// TTDDays is the mean time-to-detect in days over truth victims
	// that were detected at all: first detected day minus first
	// ground-truth day per victim. -1 when no truth victim was detected
	// (or the scenario is benign).
	TTDDays float64 `json:"ttd_days"`
	// DetectedVictims / TruthVictims count distinct victims.
	DetectedVictims int `json:"detected_victims"`
	TruthVictims    int `json:"truth_victims"`
}

// Result bundles one full catalog evaluation.
type Result struct {
	Params scenario.Params `json:"params"`
	Seed   int64           `json:"seed"`
	Grid   Grid            `json:"grid"`
	Scores []Score         `json:"scores"`
}

// Options control an evaluation run.
type Options struct {
	// Grid is the thresholds sweep (DefaultGrid when zero).
	Grid Grid
	// Concurrency is the pipeline worker width (0 = all cores).
	Concurrency int
}

// EvalBuilt scores one built scenario across the grid: one pipeline
// aggregation, then one cheap re-Detect per grid point.
func EvalBuilt(bt *scenario.Built, opt Options) []Score {
	grid := opt.Grid
	if len(grid.Shares) == 0 || len(grid.MinPackets) == 0 {
		grid = DefaultGrid()
	}
	cfg := pipeline.Config{
		Campaign:   bt.Env.C.Cfg,
		Thresholds: core.DefaultThresholds(),
		// The consensus sweep is bypassed via ForceNames; keep its
		// bound minimal anyway.
		MaxSelectorN: 1,
		Concurrency:  opt.Concurrency,
	}
	r := pipeline.NewRunnerWithSource(cfg, bt.Env.C, bt.Source)
	r.ForceNames = bt.Candidates
	r.Aggregate()
	var scores []Score
	for _, th := range grid.Points() {
		r.Cfg.Thresholds = th
		r.Detect()
		scores = append(scores, scoreDetections(bt, th, r.Current().Detections))
	}
	return scores
}

// scoreDetections computes one Score cell from raw detections.
func scoreDetections(bt *scenario.Built, th core.Thresholds, dets []*core.Detection) Score {
	s := Score{
		Scenario:     bt.Scenario.Name,
		Kind:         bt.Scenario.Kind.String(),
		Thresholds:   th,
		TruthVictims: len(bt.Truth),
		TTDDays:      -1,
	}
	detected := make(map[core.ClientDay]bool, len(dets))
	firstDet := make(map[[4]byte]int)
	for _, d := range dets {
		detected[core.ClientDay{Client: d.Victim, Day: d.Day}] = true
		if f, ok := firstDet[d.Victim]; !ok || d.Day < f {
			firstDet[d.Victim] = d.Day
		}
	}
	for k := range detected {
		if bt.TruthSet[k] {
			s.TP++
		} else {
			s.FP++
		}
	}
	for k := range bt.TruthSet {
		if !detected[k] {
			s.FN++
		}
	}
	var ttdSum float64
	for _, gt := range bt.Truth {
		f, ok := firstDet[gt.Victim]
		if !ok || len(gt.Days) == 0 {
			continue
		}
		s.DetectedVictims++
		ttdSum += float64(f - gt.Days[0])
	}
	if s.DetectedVictims > 0 {
		s.TTDDays = ttdSum / float64(s.DetectedVictims)
	}
	s.Precision = 1
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	s.Recall = 1
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// EvalCatalog builds and scores every selected scenario over one shared
// env. names filters the catalog ("" entries are ignored; empty list =
// all). Builds run sequentially — they write into the env's shared
// interning table.
func EvalCatalog(env *scenario.Env, seed int64, names []string, opt Options) (*Result, error) {
	grid := opt.Grid
	if len(grid.Shares) == 0 || len(grid.MinPackets) == 0 {
		grid = DefaultGrid()
	}
	opt.Grid = grid
	res := &Result{Params: env.P, Seed: seed, Grid: grid}
	cat := scenario.Catalog()
	if len(names) > 0 {
		var sel []*scenario.Scenario
		for _, n := range names {
			sc, err := scenario.ByName(n)
			if err != nil {
				return nil, err
			}
			sel = append(sel, sc)
		}
		cat = sel
	}
	for _, sc := range cat {
		bt := env.Build(sc, seed)
		res.Scores = append(res.Scores, EvalBuilt(bt, opt)...)
	}
	return res, nil
}
