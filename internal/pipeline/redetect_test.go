package pipeline

import (
	"reflect"
	"testing"

	"dnsamp/internal/core"
)

// sweepGrid is a small thresholds grid spanning loose to strict.
var sweepGrid = []core.Thresholds{
	{MinShare: 0.50, MinPackets: 5},
	{MinShare: 0.90, MinPackets: 5},
	{MinShare: 0.90, MinPackets: 10},
	{MinShare: 0.90, MinPackets: 50},
	{MinShare: 0.99, MinPackets: 10},
}

// snapshotDetections deep-copies a detection list so later re-Detect
// calls cannot alias it.
func snapshotDetections(dets []*core.Detection) []core.Detection {
	out := make([]core.Detection, len(dets))
	for i, d := range dets {
		out[i] = *d
	}
	return out
}

// TestRedetectSweepMatchesFreshRuns is the threshold-sweep determinism
// gate the eval harness depends on: N re-Detect invocations over one
// aggregate must equal N independent fresh Run(cfg) studies, point for
// point, with the pass-1 aggregates physically untouched throughout.
func TestRedetectSweepMatchesFreshRuns(t *testing.T) {
	cfg := runnerConfig()
	cfg.Concurrency = 8

	r := NewRunner(cfg)
	r.Detect()
	agg := r.Current().AggMain

	swept := make([][]core.Detection, len(sweepGrid))
	for i, th := range sweepGrid {
		r.Cfg.Thresholds = th
		r.Detect()
		swept[i] = snapshotDetections(r.Current().Detections)
	}
	if r.Current().AggMain != agg {
		t.Fatal("sweep rebuilt the pass-1 aggregates")
	}

	for i, th := range sweepGrid {
		fresh := cfg
		fresh.Thresholds = th
		want := snapshotDetections(Run(fresh).Detections)
		if !reflect.DeepEqual(swept[i], want) {
			t.Errorf("grid point %+v: re-Detect got %d detections, fresh run %d (or contents differ)",
				th, len(swept[i]), len(want))
		}
	}

	// The sweep must also be order-independent: walking the grid
	// backwards over the same runner reproduces each point exactly.
	for i := len(sweepGrid) - 1; i >= 0; i-- {
		r.Cfg.Thresholds = sweepGrid[i]
		r.Detect()
		if got := snapshotDetections(r.Current().Detections); !reflect.DeepEqual(got, swept[i]) {
			t.Errorf("grid point %+v: reverse-order re-Detect differs from forward pass", sweepGrid[i])
		}
	}
}

// TestForceNamesBypassesConsensus pins the eval harness hook: Select
// with ForceNames set must produce exactly the forced name list without
// touching the selectors, and Detect must run against it.
func TestForceNamesBypassesConsensus(t *testing.T) {
	cfg := runnerConfig()
	cfg.Concurrency = 4

	forced := []string{"doj.gov", "nsf.gov", "peacecorps.gov"}
	r := NewRunner(cfg)
	r.ForceNames = forced
	r.Detect()
	st := r.Current()

	if st.NameList == nil || len(st.NameList.Names) != len(forced) {
		t.Fatalf("NameList = %+v, want exactly the %d forced names", st.NameList, len(forced))
	}
	for _, n := range forced {
		if !st.NameList.Names[n] {
			t.Errorf("forced name %q missing from NameList", n)
		}
	}
	if st.ConsensusN != 0 || st.ConsensusCurve != nil {
		t.Error("ForceNames ran the consensus sweep anyway")
	}

	// The forced list is a subset of the full campaign's candidate
	// space, so detections must be a subset of (or equal to) an
	// unforced run's at the same thresholds, keyed by victim-day.
	full := Run(cfg)
	fullKeys := full.DetectionKeys()
	for _, d := range st.Detections {
		if !fullKeys[core.ClientDay{Client: d.Victim, Day: d.Day}] {
			t.Errorf("forced-name detection (%v, %d) absent from full run", d.Victim, d.Day)
		}
	}
}
