package pipeline

import (
	"strings"
	"testing"

	"dnsamp/internal/core"
	"dnsamp/internal/dnswire"
	"dnsamp/internal/simclock"
	"dnsamp/internal/topology"
)

// smallConfig keeps the integration run fast (a few seconds).
func smallConfig() Config {
	cfg := DefaultConfig(0.02)
	cfg.Campaign.Zones.ProceduralNames = 50_000
	cfg.Campaign.Topology = topology.Config{Members: 40, ASesPerClass: 80, Seed: 1}
	return cfg
}

var study = Run(smallConfig())

func TestStudyDetectsAttacks(t *testing.T) {
	if len(study.Detections) < 100 {
		t.Fatalf("main-window detections = %d, want hundreds", len(study.Detections))
	}
	if len(study.DetectionsExt) <= len(study.Detections) {
		t.Errorf("extended detections = %d, should exceed main (entity escalation)", len(study.DetectionsExt))
	}
	if len(study.Records) != len(study.Detections)+len(study.DetectionsExt) {
		t.Errorf("records = %d, detections = %d+%d", len(study.Records), len(study.Detections), len(study.DetectionsExt))
	}
}

func TestNameListShape(t *testing.T) {
	nl := study.NameList
	if len(nl.Names) < 25 || len(nl.Names) > 40 {
		t.Errorf("final list = %d names, paper has 34", len(nl.Names))
	}
	if study.ConsensusN < 20 || study.ConsensusN > 40 {
		t.Errorf("consensus N = %d, paper finds 29", study.ConsensusN)
	}
	gov := nl.GovShare()
	if gov < 0.35 || gov > 0.65 {
		t.Errorf("gov share = %.2f, paper 50%%", gov)
	}
	// The consensus curve must peak at the consensus point.
	for n := 1; n < len(study.ConsensusCurve); n++ {
		if study.ConsensusCurve[n] > study.ConsensusCurve[study.ConsensusN] {
			t.Fatalf("curve[%d]=%v exceeds consensus point %d=%v",
				n, study.ConsensusCurve[n], study.ConsensusN, study.ConsensusCurve[study.ConsensusN])
		}
	}
}

func TestSelectorsPickAttackedNames(t *testing.T) {
	attacked := map[string]bool{}
	for _, n := range study.Campaign.DB.AttackedNames() {
		attacked[n] = true
	}
	hits := 0
	for _, n := range study.Sel2.Top(20) {
		if attacked[n] {
			hits++
		}
	}
	if hits < 16 {
		t.Errorf("selector 2 top-20 contains only %d attacked names", hits)
	}
}

func TestDetectionAccuracy(t *testing.T) {
	// Detected (victim, day) pairs must overwhelmingly correspond to
	// ground-truth events.
	truth := map[core.ClientDay]bool{}
	for _, ev := range study.Campaign.Events {
		for d := ev.Start.Day(); d <= ev.End().Day(); d++ {
			truth[core.ClientDay{Client: ev.VictimKey(), Day: d}] = true
		}
	}
	tp := 0
	for _, d := range study.Detections {
		if truth[core.ClientDay{Client: d.Victim, Day: d.Day}] {
			tp++
		}
	}
	precision := float64(tp) / float64(len(study.Detections))
	if precision < 0.97 {
		t.Errorf("precision = %.3f, want ~1 (threshold design)", precision)
	}
}

func TestAttackRecordsCarrySignals(t *testing.T) {
	withTXID, withAmps, withSizes := 0, 0, 0
	for _, r := range study.Records {
		if len(r.TXIDs) > 0 {
			withTXID++
		}
		if len(r.Amplifiers) > 0 {
			withAmps++
		}
		if len(r.Sizes) > 0 {
			withSizes++
		}
	}
	n := len(study.Records)
	if withTXID < n*9/10 {
		t.Errorf("records with TXIDs: %d/%d", withTXID, n)
	}
	if withAmps < n/2 {
		t.Errorf("records with amplifiers: %d/%d", withAmps, n)
	}
	if withSizes < n/2 {
		t.Errorf("records with sizes: %d/%d", withSizes, n)
	}
}

func TestCaptureSanitization(t *testing.T) {
	st := study.CaptureStats
	if st.Accepted == 0 {
		t.Fatal("no samples accepted")
	}
	if st.OriginMapped < st.Accepted*95/100 {
		t.Errorf("origin mapping %d/%d, paper maps 99%%", st.OriginMapped, st.Accepted)
	}
	if st.PeerMapped < st.Accepted*90/100 {
		t.Errorf("peer mapping %d/%d, paper maps 96%%", st.PeerMapped, st.Accepted)
	}
}

func TestHoneypotAndGroundTruth(t *testing.T) {
	if len(study.HoneypotAttacks) < 100 {
		t.Fatalf("honeypot attacks = %d", len(study.HoneypotAttacks))
	}
	visShare := float64(len(study.VisibleGroundTruth)) / float64(len(study.HoneypotAttacks))
	if visShare < 0.05 || visShare > 0.45 {
		t.Errorf("visible ground truth share = %.2f, paper 16%%", visShare)
	}
}

func TestRequestsCarryEntityTTL(t *testing.T) {
	// Post-relocation entity records must show the constant request
	// IP TTL of 250.
	found := false
	for _, r := range study.Records {
		if r.Requests > 5 && r.ReqTTLs[250] > 0 &&
			strings.HasSuffix(r.DominantName(), ".gov.") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no entity record with TTL-250 requests found")
	}
}

func TestAggregateANYDominatedByAttacks(t *testing.T) {
	// §7.2: most ANY traffic belongs to attacks.
	ag := study.AggMain
	if ag.ANYPackets == 0 {
		t.Fatal("no ANY packets")
	}
	atkANY := 0
	for _, d := range study.Detections {
		if ca := ag.ClientOf(core.ClientDay{Client: d.Victim, Day: d.Day}); ca != nil {
			atkANY += ca.ANYPackets
		}
	}
	share := float64(atkANY) / float64(ag.ANYPackets)
	if share < 0.4 {
		t.Errorf("attack share of ANY = %.2f, paper 68%%", share)
	}
}

func TestVisibleNSProfile(t *testing.T) {
	// §4.2: no NXNS — responses carry few NS records.
	if len(study.VisibleNS) == 0 {
		t.Fatal("no NS profile collected")
	}
	le10 := 0
	for _, v := range study.VisibleNS {
		if v <= 10 {
			le10++
		}
	}
	if share := float64(le10) / float64(len(study.VisibleNS)); share < 0.9 {
		t.Errorf("responses with <=10 NS = %.2f, paper 90%%", share)
	}
}

func TestRecordIndexAndKeys(t *testing.T) {
	idx := study.RecordIndex()
	if len(idx) != len(study.Records) {
		t.Errorf("index size %d != records %d", len(idx), len(study.Records))
	}
	keys := study.DetectionKeys()
	if len(keys) != len(study.Detections) {
		t.Errorf("keys = %d", len(keys))
	}
	for _, d := range study.Detections {
		r := idx[core.ClientDay{Client: d.Victim, Day: d.Day}]
		if r == nil {
			t.Fatal("detection without record")
		}
		if r.Packets == 0 {
			t.Fatal("empty record")
		}
	}
}

func TestEntityNamesDominantInRecords(t *testing.T) {
	byName := map[string]int{}
	for _, r := range study.Records {
		byName[r.DominantName()]++
	}
	govTotal := 0
	for n, c := range byName {
		if dnswire.TLD(n) == "gov" {
			govTotal += c
		}
	}
	if share := float64(govTotal) / float64(len(study.Records)); share < 0.5 {
		t.Errorf("gov-dominant record share = %.2f (entity + gov attacks dominate)", share)
	}
}

func TestMainWindowBoundary(t *testing.T) {
	for _, d := range study.Detections {
		day := simclock.Time(d.Day) * simclock.Time(simclock.Day)
		if !simclock.MainPeriod().Contains(day) {
			t.Fatalf("main detection outside window: %s", day.Date())
		}
	}
	for _, d := range study.DetectionsExt {
		day := simclock.Time(d.Day) * simclock.Time(simclock.Day)
		if simclock.MainPeriod().Contains(day) {
			t.Fatalf("extended detection inside main window: %s", day.Date())
		}
	}
}
