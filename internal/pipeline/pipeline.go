// Package pipeline orchestrates a full study: it plans a synthetic
// campaign, materializes traffic, runs the honeypot inference and the
// IXP detection pipeline (both passes), and bundles everything the
// analyses of §5–§7 need.
package pipeline

import (
	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/ixp"
	"dnsamp/internal/simclock"
)

// Config controls a study run.
type Config struct {
	Campaign    ecosystem.CampaignConfig
	TrafficSeed int64
	Thresholds  core.Thresholds
	// MaxSelectorN bounds the consensus sweep (Fig. 3 sweeps to 70).
	MaxSelectorN int
	// ExtendedWindow enables the entity-tracking pass beyond the main
	// period (needed for Fig. 8; disable to halve runtime when only
	// main-window results are required).
	ExtendedWindow bool
}

// DefaultConfig returns a study configuration at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{
		Campaign:       ecosystem.DefaultCampaignConfig(scale),
		TrafficSeed:    11,
		Thresholds:     core.DefaultThresholds(),
		MaxSelectorN:   70,
		ExtendedWindow: true,
	}
}

// Study is the bundled result of one full run.
type Study struct {
	Cfg Config

	Campaign *ecosystem.Campaign

	// HoneypotAttacks are the CCC-style inferred attacks.
	HoneypotAttacks []*honeypot.Attack

	// AggMain holds pass-1 aggregates for the main window; AggExt for
	// the extended entity window (after the main period).
	AggMain, AggExt *core.Aggregator

	// Selector results and the consensus curve (Fig. 3).
	Sel1, Sel2, Sel3 core.SelectorResult
	ConsensusN       int
	ConsensusCurve   []float64

	// VisibleGroundTruth are honeypot attacks with IXP-visible traffic.
	VisibleGroundTruth []core.GroundTruthAttack

	// NameList is the final misused-name list.
	NameList *core.NameList

	// Detections within the main window; DetectionsExt after it.
	Detections    []*core.Detection
	DetectionsExt []*core.Detection

	// Records are the pass-2 per-attack details (main + extended).
	Records []*core.AttackRecord

	// VisibleNS holds the decodable NS counts of attack response
	// samples (the NXNS check of §4.2).
	VisibleNS []int

	// CaptureStats from pass 1.
	CaptureStats ixp.CaptureStats
}

// Run executes the full study.
func Run(cfg Config) *Study {
	st := &Study{Cfg: cfg}
	st.Campaign = ecosystem.NewCampaign(cfg.Campaign)
	c := st.Campaign

	window := simclock.MainPeriod()
	full := simclock.MainPeriod()
	if cfg.ExtendedWindow {
		full = simclock.EntityPeriod()
	}

	track := append([]string{}, c.DB.ExplicitNames()...)

	// --- Pass 1: aggregate + honeypot ---------------------------------
	gen := ecosystem.NewGenerator(c, cfg.TrafficSeed)
	cap1 := ixp.NewCapturePoint(c.Topo)
	st.AggMain = core.NewAggregator(track)
	st.AggExt = core.NewAggregator(track)
	hp := honeypot.NewPlatform(honeypot.CCCThresholds(), cfg.Campaign.NumSensors)

	full.EachDay(func(day simclock.Time) {
		dt := gen.Day(day)
		for _, tr := range dt.IXP {
			s, ok := cap1.Process(tr.Rec)
			if !ok {
				continue
			}
			if tr.Ingress != 0 {
				s.PeerAS = tr.Ingress
			}
			if window.Contains(s.Time) {
				st.AggMain.Observe(&s)
			} else {
				st.AggExt.Observe(&s)
			}
		}
		for _, sf := range dt.Sensors {
			if window.Contains(sf.Start) {
				hp.Observe(sf)
			}
		}
	})
	st.CaptureStats = cap1.Stats
	st.HoneypotAttacks = hp.Finalize()

	// --- Selectors and name list --------------------------------------
	gts := make([]core.GroundTruthAttack, 0, len(st.HoneypotAttacks))
	for _, a := range st.HoneypotAttacks {
		gts = append(gts, core.GroundTruthAttack{Victim: a.VictimKey(), Start: a.Start, End: a.End})
	}
	st.Sel1 = core.Selector1MaxSize(st.AggMain)
	st.Sel2 = core.Selector2ANYCount(st.AggMain)
	st.Sel3, st.VisibleGroundTruth = core.Selector3GroundTruth(st.AggMain, gts)
	st.ConsensusN, st.ConsensusCurve = core.ConsensusPoint(cfg.MaxSelectorN, st.Sel1, st.Sel2, st.Sel3)
	st.NameList = core.BuildNameList(st.ConsensusN, st.Sel1, st.Sel2, st.Sel3)

	// --- Detection ------------------------------------------------------
	st.Detections = core.Detect(st.AggMain, st.NameList.Names, cfg.Thresholds)
	if cfg.ExtendedWindow {
		st.DetectionsExt = core.Detect(st.AggExt, st.NameList.Names, cfg.Thresholds)
	}

	// --- Pass 2: per-attack details ------------------------------------
	all := append(append([]*core.Detection{}, st.Detections...), st.DetectionsExt...)
	col := core.NewCollector(all, st.NameList.Names)
	gen2 := ecosystem.NewGenerator(c, cfg.TrafficSeed)
	cap2 := ixp.NewCapturePoint(c.Topo)
	full.EachDay(func(day simclock.Time) {
		dt := gen2.Day(day)
		for _, tr := range dt.IXP {
			s, ok := cap2.Process(tr.Rec)
			if !ok {
				continue
			}
			if tr.Ingress != 0 {
				s.PeerAS = tr.Ingress
			}
			col.Observe(&s)
		}
	})
	col.SetVictimASN(func(v [4]byte) uint32 {
		return c.Topo.OriginAS(ecosystem.AddrFromKey(v))
	})
	st.Records = col.Records()
	st.VisibleNS = col.VisibleNS
	return st
}

// DetectionDays returns the set of detected (victim, day) keys in the
// main window.
func (st *Study) DetectionKeys() map[core.ClientDay]bool {
	out := make(map[core.ClientDay]bool, len(st.Detections))
	for _, d := range st.Detections {
		out[core.ClientDay{Client: d.Victim, Day: d.Day}] = true
	}
	return out
}

// AllRecords returns pass-2 records indexed by (victim, day).
func (st *Study) RecordIndex() map[core.ClientDay]*core.AttackRecord {
	out := make(map[core.ClientDay]*core.AttackRecord, len(st.Records))
	for _, r := range st.Records {
		out[core.ClientDay{Client: r.Victim, Day: r.Day}] = r
	}
	return out
}
