// Package pipeline orchestrates a full study: it plans a synthetic
// campaign, materializes traffic, runs the honeypot inference and the
// IXP detection pipeline (both passes), and bundles everything the
// analyses of §5–§7 need.
//
// The engine is a staged Runner over a source.Source traffic stream:
//
//	Plan      build campaign + source (synthetic by default)
//	Aggregate pass 1 — sharded day replay into aggregates + honeypot
//	Select    selector sweep, consensus point, misused-name list
//	Detect    threshold detection over the aggregates
//	Collect   pass 2 — per-attack detail records
//
// Each stage is independently invokable and recomputes only its own
// outputs; invoking a stage runs any prerequisite stages that have not
// run yet. Re-running a later stage after changing its inputs (e.g.
// Detect with new Thresholds) reuses everything upstream. Run is the
// one-shot convenience wrapper that executes all stages; its Study is
// byte-identical to a staged invocation.
//
// Every stage is worker-pooled. Traffic days are materialized in
// parallel across Config.Concurrency workers as columnar sample batches
// (name IDs into the source's interning table); each worker replays its
// batches into its own private core.Aggregator shard over a worker-local
// name table (single-writer, no locks or string hashing on the hot
// path), and the shards are merged — with their interning tables
// remapped and canonicalized — at the stage barrier. The selector
// consensus sweep and the pass-2 detail collection are parallelized the
// same way.
//
// Determinism guarantee: a run at a fixed TrafficSeed produces the same
// Study — detections, records, name list, curves, and aggregate state —
// at every Concurrency level, including the serial Concurrency == 1
// path, and with or without the day-batch cache (Config.CacheDays).
// This holds because each traffic day is a pure function of (campaign,
// seed, day), per-day results land in per-day slots merged in day
// order, shard merging is commutative, and the post-merge
// canonicalization assigns name IDs lexicographically (independent of
// which worker interned a name first).
package pipeline

import (
	"runtime"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/ixp"
	"dnsamp/internal/par"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

// Config controls a study run.
type Config struct {
	Campaign    ecosystem.CampaignConfig
	TrafficSeed int64
	Thresholds  core.Thresholds
	// MaxSelectorN bounds the consensus sweep (Fig. 3 sweeps to 70).
	MaxSelectorN int
	// ExtendedWindow enables the entity-tracking pass beyond the main
	// period (needed for Fig. 8; disable to halve runtime when only
	// main-window results are required).
	ExtendedWindow bool
	// Concurrency is the worker-pool width for traffic materialization,
	// aggregation, the selector sweep, and pass 2. Zero or negative
	// means runtime.GOMAXPROCS(0); 1 forces the serial path. Results
	// are identical at every setting.
	Concurrency int
	// CacheDays wraps the default synthetic source in a day-batch cache
	// (source.Cached) so pass 2 reuses the batches pass 1 materialized
	// instead of regenerating them: 0 disables the cache, a negative
	// value caches every day (unbounded — full pass-2 reuse), a
	// positive value caps resident days (the cache keeps the oldest
	// days, so pass 2 reuses roughly CacheDays of them and regenerates
	// the rest). Results are identical at every setting; the cache
	// trades memory (roughly one day's batch per resident day) for
	// generation time.
	CacheDays int
}

// DefaultConfig returns a study configuration at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{
		Campaign:       ecosystem.DefaultCampaignConfig(scale),
		TrafficSeed:    11,
		Thresholds:     core.DefaultThresholds(),
		MaxSelectorN:   70,
		ExtendedWindow: true,
		// Concurrency stays 0: the portable "all cores" value, resolved
		// by workers() at run time. CacheDays stays 0: regeneration is
		// the memory-lean default; memory-rich hosts opt in.
	}
}

// Study is the bundled result of one full run.
type Study struct {
	Cfg Config

	Campaign *ecosystem.Campaign

	// HoneypotAttacks are the CCC-style inferred attacks.
	HoneypotAttacks []*honeypot.Attack

	// AggMain holds pass-1 aggregates for the main window; AggExt for
	// the extended entity window (after the main period).
	AggMain, AggExt *core.Aggregator

	// Selector results and the consensus curve (Fig. 3).
	Sel1, Sel2, Sel3 core.SelectorResult
	ConsensusN       int
	ConsensusCurve   []float64

	// VisibleGroundTruth are honeypot attacks with IXP-visible traffic.
	VisibleGroundTruth []core.GroundTruthAttack

	// NameList is the final misused-name list.
	NameList *core.NameList

	// Detections within the main window; DetectionsExt after it.
	Detections    []*core.Detection
	DetectionsExt []*core.Detection

	// Records are the pass-2 per-attack details (main + extended).
	Records []*core.AttackRecord

	// VisibleNS holds the decodable NS counts of attack response
	// samples (the NXNS check of §4.2).
	VisibleNS []int

	// CaptureStats from pass 1.
	CaptureStats ixp.CaptureStats
}

// workers returns the effective pool width.
func (cfg Config) workers() int {
	if cfg.Concurrency > 0 {
		return cfg.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// forEachDay runs fn(worker, i, days[i]) for every day across a pool of
// workers; fn must write its results into per-day or per-worker slots
// only.
func forEachDay(days []simclock.Time, workers int, fn func(worker, i int, day simclock.Time)) {
	par.For(len(days), workers, func(worker, i int) { fn(worker, i, days[i]) })
}

// Runner is the staged study engine. Zero state is built lazily: each
// stage method runs its prerequisites if they have not run yet, then
// (re)computes its own outputs, so both one-shot use
// (NewRunner(cfg).Study()) and incremental use (mutate Cfg.Thresholds,
// re-Detect, re-Collect) share one code path.
//
// Campaign and Src may be set before the first stage runs to study
// custom traffic: a nil Src is planned as source.Synthetic over the
// campaign's generator (wrapped in source.Cached when Cfg.CacheDays is
// non-zero). A Runner is not safe for concurrent stage invocations; the
// parallelism lives inside the stages.
type Runner struct {
	Cfg Config

	// Campaign supplies the ground truth, topology, and namespace. Built
	// by Plan from Cfg.Campaign when nil.
	Campaign *ecosystem.Campaign

	// Src is the traffic stream. Built by Plan when nil.
	Src source.Source

	// ForceNames, when non-empty, bypasses the selector consensus: Select
	// builds the misused-name list directly from these names instead of
	// sweeping the selectors. Evaluation harnesses use it to score
	// detection against a scenario's known candidate list — scenario
	// sources carry no honeypot flows, so the ground-truth selector (and
	// with it the consensus) has nothing to anchor on. The selector
	// results and consensus curve are left zero.
	ForceNames []string

	st     *Study
	days   []simclock.Time
	window simclock.Window

	planned, aggregated, selected, detected, collected bool
}

// NewRunner creates a staged runner over cfg. No work happens until the
// first stage (or Study) is invoked.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

// NewRunnerWithSource creates a runner that streams traffic from src
// instead of synthesizing it. The campaign still supplies ground truth,
// topology, and the tracked explicit zones.
func NewRunnerWithSource(cfg Config, c *ecosystem.Campaign, src source.Source) *Runner {
	return &Runner{Cfg: cfg, Campaign: c, Src: src}
}

// Run executes the full study: the one-shot compatibility wrapper over
// the staged Runner, producing a byte-identical Study.
func Run(cfg Config) *Study { return NewRunner(cfg).Study() }

// Study returns the bundled result, running any stages that have not
// run yet. Re-running a stage marks its downstream stages stale, so a
// later Study (or explicit stage call) refreshes them; the same Study
// value always reflects the latest outputs.
func (r *Runner) Study() *Study {
	if !r.collected {
		r.Collect()
	}
	return r.st
}

// Plan builds the campaign and the traffic source. It runs once;
// subsequent calls are no-ops.
func (r *Runner) Plan() *Runner {
	if r.planned {
		return r
	}
	r.st = &Study{Cfg: r.Cfg}
	if r.Campaign == nil {
		r.Campaign = ecosystem.NewCampaign(r.Cfg.Campaign)
	}
	r.st.Campaign = r.Campaign
	r.window = simclock.MainPeriod()
	full := simclock.MainPeriod()
	if r.Cfg.ExtendedWindow {
		full = simclock.EntityPeriod()
	}
	if r.Src == nil {
		gen := ecosystem.NewGenerator(r.Campaign, r.Cfg.TrafficSeed)
		r.Src = source.NewSynthetic(gen, full)
		if n := r.Cfg.CacheDays; n != 0 {
			if n < 0 {
				n = 0 // source.Cached treats <= 0 as unbounded
			}
			r.Src = source.NewCached(r.Src, n)
		}
	}
	r.days = r.Src.Days()
	r.planned = true
	return r
}

// pass1Shard is one worker's private single-writer aggregation state.
type pass1Shard struct {
	aggMain, aggExt *core.Aggregator
	cap             *ixp.CapturePoint
}

// Aggregate runs pass 1: workers materialize the source's days in
// parallel, each observing into its own aggregator shard and capture
// point (single writer, no locks); honeypot sensor flows are kept in
// per-day slots and fed to the platform serially in day order at the
// barrier. It fills AggMain, AggExt, CaptureStats, and HoneypotAttacks.
//
// Shards aggregate directly in the source's interning table space: for
// the synthetic source every name a worker can meet — including the
// tracked explicit zones resolved here — was interned at generator
// construction, so the batches' name IDs need no per-worker
// re-interning, shard merges are identity remaps, and the table is
// read-only during the parallel stage. Sources whose batches carry
// other tables remap lazily per capture point.
func (r *Runner) Aggregate() *Runner {
	r.Plan()
	st, c := r.st, r.Campaign
	workers := r.Cfg.workers()
	track := append([]string{}, c.DB.ExplicitNames()...)

	stab := r.Src.Table()
	shards := make([]*pass1Shard, workers)
	for w := range shards {
		shards[w] = &pass1Shard{
			aggMain: core.NewAggregator(stab, track),
			aggExt:  core.NewAggregator(stab, track),
			cap:     ixp.NewCapturePoint(c.Topo, stab),
		}
	}
	window := r.window
	dayFlows := make([][]ecosystem.SensorFlow, len(r.days))
	forEachDay(r.days, workers, func(worker, i int, day simclock.Time) {
		sh := shards[worker]
		batch, flows := r.Src.DayFlows(day)
		// Batch-native pass 1: RemapBatch accumulates capture stats (and
		// is an identity view here, the batch already carries the shared
		// table); the aggregators then consume whole columns, split at
		// the window boundary (a time-bounds check — only batches that
		// straddle it fall back to a filtered row walk).
		rb := sh.cap.RemapBatch(batch)
		core.ObserveBatchSplit(sh.aggMain, sh.aggExt, rb, window)
		dayFlows[i] = flows
	})

	// Stage barrier: merge shards (commutative, so worker order is
	// irrelevant) and canonicalize the merged client-day arenas so
	// their order is independent of the sharding. Every shard
	// aggregated in the shared source table, so name IDs are already
	// sharding-independent and the table itself needs no
	// canonicalization (the aggregates keep the source table as their
	// ID space).
	st.AggMain = shards[0].aggMain
	st.AggExt = shards[0].aggExt
	st.CaptureStats = shards[0].cap.Stats
	for _, sh := range shards[1:] {
		st.AggMain.Merge(sh.aggMain)
		st.AggExt.Merge(sh.aggExt)
		st.CaptureStats.Add(sh.cap.Stats)
	}
	st.AggMain.CanonicalizeClients()
	st.AggExt.CanonicalizeClients()
	hp := honeypot.NewPlatform(honeypot.CCCThresholds(), r.Cfg.Campaign.NumSensors)
	for _, flows := range dayFlows {
		for _, sf := range flows {
			if window.Contains(sf.Start) {
				hp.Observe(sf)
			}
		}
	}
	st.HoneypotAttacks = hp.Finalize()
	r.aggregated = true
	r.selected, r.detected, r.collected = false, false, false
	return r
}

// Select runs the selector sweep over the pass-1 aggregates: the three
// selectors, the consensus point (Fig. 3), and the final misused-name
// list.
func (r *Runner) Select() *Runner {
	if !r.aggregated {
		r.Aggregate()
	}
	st := r.st
	if len(r.ForceNames) > 0 {
		nl := &core.NameList{N: len(r.ForceNames), Names: make(map[string]bool, len(r.ForceNames))}
		for _, n := range r.ForceNames {
			nl.Names[n] = true
		}
		st.NameList = nl
		r.selected = true
		r.detected, r.collected = false, false
		return r
	}
	gts := make([]core.GroundTruthAttack, 0, len(st.HoneypotAttacks))
	for _, a := range st.HoneypotAttacks {
		gts = append(gts, core.GroundTruthAttack{Victim: a.VictimKey(), Start: a.Start, End: a.End})
	}
	st.Sel1 = core.Selector1MaxSize(st.AggMain)
	st.Sel2 = core.Selector2ANYCount(st.AggMain)
	st.Sel3, st.VisibleGroundTruth = core.Selector3GroundTruth(st.AggMain, gts)
	st.ConsensusN, st.ConsensusCurve = core.ConsensusPointParallel(r.Cfg.MaxSelectorN, r.Cfg.workers(), st.Sel1, st.Sel2, st.Sel3)
	st.NameList = core.BuildNameList(st.ConsensusN, st.Sel1, st.Sel2, st.Sel3)
	r.selected = true
	r.detected, r.collected = false, false
	return r
}

// Detect runs threshold detection over the aggregates and the current
// name list. It reads Cfg.Thresholds at call time: mutate Cfg and
// re-invoke to re-detect without re-aggregating (then re-invoke Collect
// if pass-2 records are needed for the new detections).
func (r *Runner) Detect() *Runner {
	if !r.selected {
		r.Select()
	}
	st := r.st
	st.Cfg.Thresholds = r.Cfg.Thresholds
	st.Detections = core.Detect(st.AggMain, st.NameList.Names, r.Cfg.Thresholds)
	st.DetectionsExt = nil
	if r.Cfg.ExtendedWindow {
		st.DetectionsExt = core.Detect(st.AggExt, st.NameList.Names, r.Cfg.Thresholds)
	}
	r.detected = true
	r.collected = false
	return r
}

// Collect runs pass 2, gathering per-attack details for the current
// detections. A sample lands in the record keyed by its own (client,
// sample-day), but events straddling midnight emit samples on days
// after their generation day. Each generation day therefore gets a
// private collector over the detections it can possibly feed — its own
// day plus the campaign's maximum event span ("spill horizon") — and
// days that cannot feed any detection are skipped entirely. The
// per-day partials are merged into the full collector in day order at
// the barrier, which reproduces the serial collector's record and
// VisibleNS ordering exactly.
func (r *Runner) Collect() *Runner {
	if !r.detected {
		r.Detect()
	}
	st, c := r.st, r.Campaign
	workers := r.Cfg.workers()
	all := append(append([]*core.Detection{}, st.Detections...), st.DetectionsExt...)
	detsByDay := make(map[int][]*core.Detection)
	for _, d := range all {
		detsByDay[d.Day] = append(detsByDay[d.Day], d)
	}
	spill := 0
	for _, ev := range c.Events {
		if s := ev.End().Day() - ev.Start.Day(); s > spill {
			spill = s
		}
	}
	// Pass 2 streams the same source as pass 1 (synthetic day synthesis
	// is a pure function of the day; a cached source serves pass-1
	// batches straight back); per-day collectors resolve candidates
	// against the source table, so batch replay again needs no
	// re-interning. Candidates are pre-resolved serially here: NameList
	// names come from selectors over observed traffic, so they are
	// already interned, and this no-op pass guarantees the concurrent
	// NewCollector calls below only ever read the shared table even if
	// a future caller feeds names from elsewhere.
	stab := r.Src.Table()
	for n := range st.NameList.Names {
		stab.Intern(n)
	}
	dayCols := make([]*core.Collector, len(r.days))
	forEachDay(r.days, workers, func(worker, i int, day simclock.Time) {
		var dets []*core.Detection
		for d := day.Day(); d <= day.Day()+spill; d++ {
			dets = append(dets, detsByDay[d]...)
		}
		if len(dets) == 0 {
			return
		}
		col := core.NewCollector(stab, dets, st.NameList.Names)
		// Batch-native pass 2: RemapBatch guarantees the batch is in the
		// collector's table space (an identity no-op for the usual
		// shared-table sources; source.Replay may serve foreign-table
		// batches) and ObserveBatch consumes it directly — no per-sample
		// materialization, and no routing annotation for the packets the
		// collector rejects (the old per-sample path annotated every
		// packet; its capture stats were discarded, so the remap capture
		// point carries no topology).
		cap2 := ixp.NewCapturePoint(nil, stab)
		col.ObserveBatch(cap2.RemapBatch(r.Src.Day(day)), c.Topo)
		dayCols[i] = col
	})
	col := core.NewCollector(stab, all, st.NameList.Names)
	for _, dc := range dayCols {
		if dc != nil {
			col.Merge(dc)
		}
	}
	col.SetVictimASN(func(v [4]byte) uint32 {
		return c.Topo.OriginAS(ecosystem.AddrFromKey(v))
	})
	st.Records = col.Records()
	st.VisibleNS = col.VisibleNS
	r.collected = true
	return r
}

// Current returns the Study as computed so far without running any
// stages — unlike Study, which forces a full Collect. Callers that only
// need detections invoke Detect and read Current: threshold sweeps skip
// the pass-2 record collection entirely. Nil before Plan has run.
func (r *Runner) Current() *Study { return r.st }

// DetectionKeys returns the set of detected (victim, day) keys in the
// main window.
func (st *Study) DetectionKeys() map[core.ClientDay]bool {
	out := make(map[core.ClientDay]bool, len(st.Detections))
	for _, d := range st.Detections {
		out[core.ClientDay{Client: d.Victim, Day: d.Day}] = true
	}
	return out
}

// RecordIndex returns pass-2 records indexed by (victim, day).
func (st *Study) RecordIndex() map[core.ClientDay]*core.AttackRecord {
	out := make(map[core.ClientDay]*core.AttackRecord, len(st.Records))
	for _, r := range st.Records {
		out[core.ClientDay{Client: r.Victim, Day: r.Day}] = r
	}
	return out
}
