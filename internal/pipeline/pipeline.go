// Package pipeline orchestrates a full study: it plans a synthetic
// campaign, materializes traffic, runs the honeypot inference and the
// IXP detection pipeline (both passes), and bundles everything the
// analyses of §5–§7 need.
//
// The engine is staged and worker-pooled. Traffic days are materialized
// in parallel across Config.Concurrency workers as columnar sample
// batches (name IDs into the generator's frozen interning table); each
// worker replays its batches into its own private core.Aggregator shard
// over a worker-local name table (single-writer, no locks or string
// hashing on the hot path), and the shards are merged — with their
// interning tables remapped and canonicalized — at the stage barrier.
// The selector consensus sweep and the pass-2 detail collection are
// parallelized the same way.
//
// Determinism guarantee: a run at a fixed TrafficSeed produces the same
// Study — detections, records, name list, curves, and aggregate state —
// at every Concurrency level, including the serial Concurrency == 1
// path. This holds because each traffic day is a pure function of
// (campaign, seed, day), per-day results land in per-day slots merged
// in day order, shard merging is commutative, and the post-merge
// canonicalization assigns name IDs lexicographically (independent of
// which worker interned a name first).
package pipeline

import (
	"runtime"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/ixp"
	"dnsamp/internal/par"
	"dnsamp/internal/simclock"
)

// Config controls a study run.
type Config struct {
	Campaign    ecosystem.CampaignConfig
	TrafficSeed int64
	Thresholds  core.Thresholds
	// MaxSelectorN bounds the consensus sweep (Fig. 3 sweeps to 70).
	MaxSelectorN int
	// ExtendedWindow enables the entity-tracking pass beyond the main
	// period (needed for Fig. 8; disable to halve runtime when only
	// main-window results are required).
	ExtendedWindow bool
	// Concurrency is the worker-pool width for traffic materialization,
	// aggregation, the selector sweep, and pass 2. Zero or negative
	// means runtime.GOMAXPROCS(0); 1 forces the serial path. Results
	// are identical at every setting.
	Concurrency int
}

// DefaultConfig returns a study configuration at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{
		Campaign:       ecosystem.DefaultCampaignConfig(scale),
		TrafficSeed:    11,
		Thresholds:     core.DefaultThresholds(),
		MaxSelectorN:   70,
		ExtendedWindow: true,
		// Concurrency stays 0: the portable "all cores" value, resolved
		// by workers() at run time.
	}
}

// Study is the bundled result of one full run.
type Study struct {
	Cfg Config

	Campaign *ecosystem.Campaign

	// HoneypotAttacks are the CCC-style inferred attacks.
	HoneypotAttacks []*honeypot.Attack

	// AggMain holds pass-1 aggregates for the main window; AggExt for
	// the extended entity window (after the main period).
	AggMain, AggExt *core.Aggregator

	// Selector results and the consensus curve (Fig. 3).
	Sel1, Sel2, Sel3 core.SelectorResult
	ConsensusN       int
	ConsensusCurve   []float64

	// VisibleGroundTruth are honeypot attacks with IXP-visible traffic.
	VisibleGroundTruth []core.GroundTruthAttack

	// NameList is the final misused-name list.
	NameList *core.NameList

	// Detections within the main window; DetectionsExt after it.
	Detections    []*core.Detection
	DetectionsExt []*core.Detection

	// Records are the pass-2 per-attack details (main + extended).
	Records []*core.AttackRecord

	// VisibleNS holds the decodable NS counts of attack response
	// samples (the NXNS check of §4.2).
	VisibleNS []int

	// CaptureStats from pass 1.
	CaptureStats ixp.CaptureStats
}

// workers returns the effective pool width.
func (cfg Config) workers() int {
	if cfg.Concurrency > 0 {
		return cfg.Concurrency
	}
	return runtime.GOMAXPROCS(0)
}

// daysOf collects the start-of-day times of a window.
func daysOf(w simclock.Window) []simclock.Time {
	days := make([]simclock.Time, 0, w.Days())
	w.EachDay(func(day simclock.Time) { days = append(days, day) })
	return days
}

// forEachDay runs fn(worker, i, days[i]) for every day across a pool of
// workers; fn must write its results into per-day or per-worker slots
// only.
func forEachDay(days []simclock.Time, workers int, fn func(worker, i int, day simclock.Time)) {
	par.For(len(days), workers, func(worker, i int) { fn(worker, i, days[i]) })
}

// pass1Shard is one worker's private single-writer aggregation state.
type pass1Shard struct {
	aggMain, aggExt *core.Aggregator
	cap             *ixp.CapturePoint
}

// Run executes the full study.
func Run(cfg Config) *Study {
	st := &Study{Cfg: cfg}
	st.Campaign = ecosystem.NewCampaign(cfg.Campaign)
	c := st.Campaign

	window := simclock.MainPeriod()
	full := simclock.MainPeriod()
	if cfg.ExtendedWindow {
		full = simclock.EntityPeriod()
	}
	days := daysOf(full)
	workers := cfg.workers()

	track := append([]string{}, c.DB.ExplicitNames()...)

	// --- Pass 1: aggregate + honeypot ---------------------------------
	// Workers materialize days in parallel; each observes into its own
	// aggregator shard and capture point (single writer, no locks).
	// Honeypot sensor flows are kept in per-day slots and fed to the
	// platform serially in day order at the barrier.
	// All shards aggregate directly in the generator's frozen table
	// space: the batches' name IDs need no per-worker re-interning, and
	// shard merges are identity remaps. The table is read-only during
	// the parallel stage (every name a worker can meet — including the
	// tracked explicit zones resolved here — was interned at generator
	// construction).
	gen := ecosystem.NewGenerator(c, cfg.TrafficSeed)
	gtab := gen.Table()
	shards := make([]*pass1Shard, workers)
	for w := range shards {
		shards[w] = &pass1Shard{
			aggMain: core.NewAggregator(gtab, track),
			aggExt:  core.NewAggregator(gtab, track),
			cap:     ixp.NewCapturePoint(c.Topo, gtab),
		}
	}
	dayFlows := make([][]ecosystem.SensorFlow, len(days))
	forEachDay(days, workers, func(worker, i int, day simclock.Time) {
		sh := shards[worker]
		dt := gen.Day(day)
		sh.cap.ConsumeBatch(dt.Batch, func(s *ixp.DNSSample) {
			if window.Contains(s.Time) {
				sh.aggMain.Observe(s)
			} else {
				sh.aggExt.Observe(s)
			}
		})
		dayFlows[i] = dt.Sensors
	})

	// Stage barrier: merge shards (commutative, so worker order is
	// irrelevant), canonicalize the merged name tables so IDs are
	// independent of the sharding, and replay sensor flows in day
	// order.
	st.AggMain = shards[0].aggMain
	st.AggExt = shards[0].aggExt
	st.CaptureStats = shards[0].cap.Stats
	for _, sh := range shards[1:] {
		st.AggMain.Merge(sh.aggMain)
		st.AggExt.Merge(sh.aggExt)
		st.CaptureStats.Add(sh.cap.Stats)
	}
	st.AggMain.Canonicalize()
	st.AggExt.Canonicalize()
	hp := honeypot.NewPlatform(honeypot.CCCThresholds(), cfg.Campaign.NumSensors)
	for _, flows := range dayFlows {
		for _, sf := range flows {
			if window.Contains(sf.Start) {
				hp.Observe(sf)
			}
		}
	}
	st.HoneypotAttacks = hp.Finalize()

	// --- Selectors and name list --------------------------------------
	gts := make([]core.GroundTruthAttack, 0, len(st.HoneypotAttacks))
	for _, a := range st.HoneypotAttacks {
		gts = append(gts, core.GroundTruthAttack{Victim: a.VictimKey(), Start: a.Start, End: a.End})
	}
	st.Sel1 = core.Selector1MaxSize(st.AggMain)
	st.Sel2 = core.Selector2ANYCount(st.AggMain)
	st.Sel3, st.VisibleGroundTruth = core.Selector3GroundTruth(st.AggMain, gts)
	st.ConsensusN, st.ConsensusCurve = core.ConsensusPointParallel(cfg.MaxSelectorN, workers, st.Sel1, st.Sel2, st.Sel3)
	st.NameList = core.BuildNameList(st.ConsensusN, st.Sel1, st.Sel2, st.Sel3)

	// --- Detection ------------------------------------------------------
	st.Detections = core.Detect(st.AggMain, st.NameList.Names, cfg.Thresholds)
	if cfg.ExtendedWindow {
		st.DetectionsExt = core.Detect(st.AggExt, st.NameList.Names, cfg.Thresholds)
	}

	// --- Pass 2: per-attack details ------------------------------------
	// A sample lands in the record keyed by its own (client, sample-day),
	// but events straddling midnight emit samples on days after their
	// generation day. Each generation day therefore gets a private
	// collector over the detections it can possibly feed — its own day
	// plus the campaign's maximum event span ("spill horizon") — and
	// days that cannot feed any detection are skipped entirely. The
	// per-day partials are merged into the full collector in day order
	// at the barrier, which reproduces the serial collector's record
	// and VisibleNS ordering exactly.
	all := append(append([]*core.Detection{}, st.Detections...), st.DetectionsExt...)
	detsByDay := make(map[int][]*core.Detection)
	for _, d := range all {
		detsByDay[d.Day] = append(detsByDay[d.Day], d)
	}
	spill := 0
	for _, ev := range c.Events {
		if s := ev.End().Day() - ev.Start.Day(); s > spill {
			spill = s
		}
	}
	// Pass 2 reuses the pass-1 generator (its day synthesis is a pure
	// function of the day, and its frozen table is read-only); per-day
	// collectors resolve candidates against that table, so batch replay
	// again needs no re-interning. Candidates are pre-resolved serially
	// here: NameList names come from selectors over observed traffic,
	// so they are already interned, and this no-op pass guarantees the
	// concurrent NewCollector calls below only ever read the shared
	// table even if a future caller feeds names from elsewhere.
	for n := range st.NameList.Names {
		gtab.Intern(n)
	}
	dayCols := make([]*core.Collector, len(days))
	forEachDay(days, workers, func(worker, i int, day simclock.Time) {
		var dets []*core.Detection
		for d := day.Day(); d <= day.Day()+spill; d++ {
			dets = append(dets, detsByDay[d]...)
		}
		if len(dets) == 0 {
			return
		}
		col := core.NewCollector(gtab, dets, st.NameList.Names)
		cap2 := ixp.NewCapturePoint(c.Topo, gtab)
		dt := gen.Day(day)
		cap2.ConsumeBatch(dt.Batch, func(s *ixp.DNSSample) { col.Observe(s) })
		dayCols[i] = col
	})
	col := core.NewCollector(gtab, all, st.NameList.Names)
	for _, dc := range dayCols {
		if dc != nil {
			col.Merge(dc)
		}
	}
	col.SetVictimASN(func(v [4]byte) uint32 {
		return c.Topo.OriginAS(ecosystem.AddrFromKey(v))
	})
	st.Records = col.Records()
	st.VisibleNS = col.VisibleNS
	return st
}

// DetectionDays returns the set of detected (victim, day) keys in the
// main window.
func (st *Study) DetectionKeys() map[core.ClientDay]bool {
	out := make(map[core.ClientDay]bool, len(st.Detections))
	for _, d := range st.Detections {
		out[core.ClientDay{Client: d.Victim, Day: d.Day}] = true
	}
	return out
}

// AllRecords returns pass-2 records indexed by (victim, day).
func (st *Study) RecordIndex() map[core.ClientDay]*core.AttackRecord {
	out := make(map[core.ClientDay]*core.AttackRecord, len(st.Records))
	for _, r := range st.Records {
		out[core.ClientDay{Client: r.Victim, Day: r.Day}] = r
	}
	return out
}
