package pipeline

import (
	"reflect"
	"testing"

	"dnsamp/internal/topology"
)

// determinismConfig is a fast configuration for the parallel-vs-serial
// equivalence runs (two full studies, also exercised under -race).
func determinismConfig() Config {
	cfg := DefaultConfig(0.01)
	cfg.Campaign.Zones.ProceduralNames = 20_000
	cfg.Campaign.Topology = topology.Config{Members: 24, ASesPerClass: 40, Seed: 1}
	return cfg
}

// TestParallelMatchesSerial is the engine's determinism guarantee: at a
// fixed TrafficSeed, a worker-pooled run must produce a Study identical
// to the serial run — aggregates, selectors, detections, records, and
// ordering included.
func TestParallelMatchesSerial(t *testing.T) {
	serialCfg := determinismConfig()
	serialCfg.Concurrency = 1
	parallelCfg := determinismConfig()
	parallelCfg.Concurrency = 8

	serial := Run(serialCfg)
	parallel := Run(parallelCfg)

	check := func(field string, a, b interface{}) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s differs between serial and parallel runs", field)
		}
	}
	check("CaptureStats", serial.CaptureStats, parallel.CaptureStats)
	check("AggMain", serial.AggMain, parallel.AggMain)
	check("AggExt", serial.AggExt, parallel.AggExt)
	check("HoneypotAttacks", serial.HoneypotAttacks, parallel.HoneypotAttacks)
	check("Sel1", serial.Sel1, parallel.Sel1)
	check("Sel2", serial.Sel2, parallel.Sel2)
	check("Sel3", serial.Sel3, parallel.Sel3)
	check("ConsensusN", serial.ConsensusN, parallel.ConsensusN)
	check("ConsensusCurve", serial.ConsensusCurve, parallel.ConsensusCurve)
	check("VisibleGroundTruth", serial.VisibleGroundTruth, parallel.VisibleGroundTruth)
	check("NameList", serial.NameList, parallel.NameList)
	check("Detections", serial.Detections, parallel.Detections)
	check("DetectionsExt", serial.DetectionsExt, parallel.DetectionsExt)
	check("Records", serial.Records, parallel.Records)
	check("VisibleNS", serial.VisibleNS, parallel.VisibleNS)
}

// TestConcurrencyDefaults ensures the zero value selects the automatic
// pool width rather than a degenerate zero-worker run.
func TestConcurrencyDefaults(t *testing.T) {
	if (Config{}).workers() < 1 {
		t.Fatal("zero-value Config must default to at least one worker")
	}
	if (Config{Concurrency: -3}).workers() < 1 {
		t.Fatal("negative Concurrency must default to at least one worker")
	}
	if got := (Config{Concurrency: 5}).workers(); got != 5 {
		t.Fatalf("explicit Concurrency ignored: got %d", got)
	}
}
