package pipeline

import (
	"bytes"
	"testing"

	"dnsamp/internal/ecosystem"
	"dnsamp/internal/source"
)

// TestSnapshotStudyMatchesLive is the cross-process determinism golden
// test for persisted batch snapshots: recording the synthetic source,
// serializing it to the snapshot format, loading it back (as another
// process would), and running the full pipeline over the loaded
// source must produce a Study identical to running the live synthetic
// source directly — detections, records, aggregates, capture stats,
// honeypot inference, and name list included.
func TestSnapshotStudyMatchesLive(t *testing.T) {
	cfg := runnerConfig()
	cfg.Concurrency = 8

	r := NewRunner(cfg)
	r.Plan()
	rec := source.Record(r.Src)
	var buf bytes.Buffer
	if err := rec.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	want := r.Study()

	loaded, err := source.OpenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if loaded.Table() == r.Src.Table() {
		t.Fatal("loaded snapshot shares the live table; the cross-process claim needs a fresh one")
	}
	got := NewRunnerWithSource(cfg, ecosystem.NewCampaign(cfg.Campaign), loaded).Study()
	checkStudiesEqual(t, "snapshot", want, got)
}
