package pipeline

import (
	"reflect"
	"testing"

	"dnsamp/internal/core"
)

// runnerConfig is a fast configuration for the staged-vs-wrapper golden
// runs (main window only; the full-window path is covered by
// TestParallelMatchesSerial).
func runnerConfig() Config {
	cfg := determinismConfig()
	cfg.ExtendedWindow = false
	return cfg
}

// checkStudiesEqual compares every Study field except Cfg (which may
// legitimately differ in engine knobs like CacheDays that must not
// affect results).
func checkStudiesEqual(t *testing.T, label string, a, b *Study) {
	t.Helper()
	check := func(field string, x, y interface{}) {
		t.Helper()
		if !reflect.DeepEqual(x, y) {
			t.Errorf("%s: %s differs", label, field)
		}
	}
	check("CaptureStats", a.CaptureStats, b.CaptureStats)
	check("AggMain", a.AggMain, b.AggMain)
	check("AggExt", a.AggExt, b.AggExt)
	check("HoneypotAttacks", a.HoneypotAttacks, b.HoneypotAttacks)
	check("Sel1", a.Sel1, b.Sel1)
	check("Sel2", a.Sel2, b.Sel2)
	check("Sel3", a.Sel3, b.Sel3)
	check("ConsensusN", a.ConsensusN, b.ConsensusN)
	check("ConsensusCurve", a.ConsensusCurve, b.ConsensusCurve)
	check("VisibleGroundTruth", a.VisibleGroundTruth, b.VisibleGroundTruth)
	check("NameList", a.NameList, b.NameList)
	check("Detections", a.Detections, b.Detections)
	check("DetectionsExt", a.DetectionsExt, b.DetectionsExt)
	check("Records", a.Records, b.Records)
	check("VisibleNS", a.VisibleNS, b.VisibleNS)
}

// TestRunnerMatchesRun is the API-redesign golden test: driving the
// staged Runner stage by stage must reproduce pipeline.Run's Study
// exactly — serial and worker-pooled, with and without the day-batch
// cache.
func TestRunnerMatchesRun(t *testing.T) {
	for _, conc := range []int{1, 8} {
		cfg := runnerConfig()
		cfg.Concurrency = conc
		want := Run(cfg)

		r := NewRunner(cfg)
		r.Plan().Aggregate().Select().Detect().Collect()
		got := r.Study()
		if got.Cfg != want.Cfg {
			t.Errorf("concurrency %d: Cfg differs", conc)
		}
		checkStudiesEqual(t, "staged", want, got)

		cached := cfg
		cached.CacheDays = -1
		checkStudiesEqual(t, "cached", want, Run(cached))

		bounded := cfg
		bounded.CacheDays = 7 // far below the day count: constant churn
		checkStudiesEqual(t, "bounded-cache", want, Run(bounded))
	}
}

// TestRunnerRedetect re-runs Detect and Collect under new thresholds on
// an existing runner; the refreshed outputs must match a from-scratch
// run at those thresholds, and upstream stages must be untouched.
func TestRunnerRedetect(t *testing.T) {
	cfg := runnerConfig()
	cfg.Concurrency = 8

	r := NewRunner(cfg)
	first := r.Study()
	baseDetections := len(first.Detections)
	aggBefore := first.AggMain

	strict := core.Thresholds{MinShare: 0.99, MinPackets: 50}
	r.Cfg.Thresholds = strict
	r.Detect().Collect()

	fresh := cfg
	fresh.Thresholds = strict
	want := Run(fresh)

	got := r.Study()
	if got.AggMain != aggBefore {
		t.Error("re-Detect must not rebuild pass-1 aggregates")
	}
	if got.Cfg.Thresholds != strict {
		t.Errorf("Study.Cfg.Thresholds not refreshed: %+v", got.Cfg.Thresholds)
	}
	checkStudiesEqual(t, "redetect", want, got)
	if len(want.Detections) >= baseDetections {
		t.Skipf("strict thresholds did not reduce detections (%d -> %d); config too small to exercise the sweep",
			baseDetections, len(want.Detections))
	}
}
