package experiments

import (
	"fmt"

	"dnsamp/internal/analysis"
	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/simclock"
)

// Section8 quantifies the paper's §8 operator recommendations: how much
// attack traffic would ANY countermeasures remove, and how far educating
// the few shared upstream resolvers behind the forwarder population
// goes ("as we found that some few resolvers serve a significant amount
// of amplifiers, educating those first will have larger impact").
func (s *Suite) Section8() *Report {
	r := &Report{ID: "section8", Title: "operator countermeasures (discussion, §8)"}
	mit := analysis.AnalyzeMitigation(s.MainRecords, s.Study.Campaign.Pool)
	r.addf("paper: attack traffic is essentially all ANY; 98%% of open amplifiers are forwarders;")
	r.addf("       individual upstream resolvers serve up to 20k forwarders")
	r.addf("ANY blocking / RFC 8482 removes %.0f%% of attack packets", 100*mit.ANYShare)
	r.addf("forwarder share of attack responses: %.0f%% (behind %d shared upstreams)",
		100*mit.ForwarderResponseShare, mit.Upstreams)
	r.addf("largest upstream serves %d abused forwarders", mit.TopUpstreamForwarders)
	for _, k := range []int{1, 5, 10, 25, 50} {
		if k > mit.Upstreams {
			break
		}
		r.addf("educating top %2d upstreams removes %5.1f%% of forwarder-borne attack responses",
			k, 100*mit.CoverageAt(k))
	}
	return r
}

// AppendixB compares the CCC platform's sensitive inference thresholds
// with the stricter settings of related honeypot projects (AmpPot:
// 100 packets / 3600 s gap; Noroozian et al.: 600 s gap), reproducing
// the appendix's observation that CCC reports more attacks for the same
// traffic.
func (s *Suite) AppendixB() *Report {
	r := &Report{ID: "appendixB", Title: "honeypot threshold comparison (Appendix B)"}
	r.addf("paper: CCC (>=5 req, <=900 s gap) is more sensitive than AmpPot-style settings and reports slightly more attacks")

	configs := []struct {
		name string
		cfg  honeypot.InferenceConfig
	}{
		{"CCC   (>=5,  <=900s)", honeypot.CCCThresholds()},
		{"Noroozian (>=100, <=600s)", honeypot.InferenceConfig{MinRequests: 100, MaxGap: 600 * simclock.Second}},
		{"AmpPot (>=100, <=3600s)", honeypot.AmpPotThresholds()},
	}

	// Re-run the honeypot inference from regenerated sensor flows under
	// each threshold set.
	platforms := make([]*honeypot.Platform, len(configs))
	for i, c := range configs {
		platforms[i] = honeypot.NewPlatform(c.cfg, s.Study.Cfg.Campaign.NumSensors)
	}
	gen := ecosystem.NewGenerator(s.Study.Campaign, s.Study.Cfg.TrafficSeed)
	gen.SkipIXP = true
	simclock.MainPeriod().EachDay(func(day simclock.Time) {
		dt := gen.Day(day)
		for _, sf := range dt.Sensors {
			for _, p := range platforms {
				p.Observe(sf)
			}
		}
	})
	base := 0
	for i, c := range configs {
		attacks := platforms[i].Finalize()
		if i == 0 {
			base = len(attacks)
		}
		rel := "baseline"
		if i > 0 && base > 0 {
			rel = stats2pct(len(attacks), base)
		}
		r.addf("%-26s %6d attacks (%s)", c.name, len(attacks), rel)
	}
	return r
}

func stats2pct(part, whole int) string {
	return fmt.Sprintf("%.1f%% of CCC", 100*float64(part)/float64(whole))
}

// FutureWork explores the paper's stated future direction: "the
// fine-tuning of our thresholds to identify more subtle attacks". With
// synthetic ground truth available, every threshold pair can be scored
// for precision (detected pairs that correspond to real events) and
// recall over faintly-visible attacks (ground-truth events with at
// least 2 sampled misused-name packets — too weak for the default
// thresholds but in principle findable).
func (s *Suite) FutureWork() *Report {
	r := &Report{ID: "futurework", Title: "threshold fine-tuning for subtle attacks (§9 outlook)"}
	r.addf("paper: default thresholds (90%%, 10 pkts) favour precision; future work: find more subtle attacks")

	// Ground-truth (victim, day) pairs of real attacks.
	truth := make(map[core.ClientDay]bool)
	for _, ev := range s.Study.Campaign.Events {
		for d := ev.Start.Day(); d <= ev.End().Day(); d++ {
			truth[core.ClientDay{Client: ev.VictimKey(), Day: d}] = true
		}
	}
	// Faintly-visible attacks: truth pairs with >= 2 sampled candidate
	// packets at the IXP.
	faint := 0
	cands := s.Study.AggMain.CandidateSet(s.Study.NameList.Names)
	s.Study.AggMain.EachClient(func(key core.ClientDay, ca *core.ClientAgg) {
		if !truth[key] {
			return
		}
		if _, cand := ca.ShareOf(cands); cand >= 2 {
			faint++
		}
	})

	r.addf("%8s %8s %11s %10s %8s", "share", "minPkts", "detections", "precision", "recall")
	for _, th := range []core.Thresholds{
		{MinShare: 0.90, MinPackets: 10}, // paper default
		{MinShare: 0.90, MinPackets: 5},
		{MinShare: 0.90, MinPackets: 2},
		{MinShare: 0.75, MinPackets: 5},
		{MinShare: 0.75, MinPackets: 2},
		{MinShare: 0.50, MinPackets: 2},
	} {
		dets := core.Detect(s.Study.AggMain, s.Study.NameList.Names, th)
		tp := 0
		for _, d := range dets {
			if truth[core.ClientDay{Client: d.Victim, Day: d.Day}] {
				tp++
			}
		}
		precision, recall := 0.0, 0.0
		if len(dets) > 0 {
			precision = float64(tp) / float64(len(dets))
		}
		if faint > 0 {
			recall = float64(tp) / float64(faint)
		}
		tag := ""
		if th.MinShare == 0.90 && th.MinPackets == 10 {
			tag = "  <- paper default"
		}
		r.addf("%7.0f%% %8d %11d %9.1f%% %7.1f%%%s",
			100*th.MinShare, th.MinPackets, len(dets), 100*precision, 100*recall, tag)
	}
	r.addf("faintly-visible ground-truth attacks (>=2 sampled pkts): %d", faint)
	return r
}
