// Package experiments regenerates every table and figure of the paper's
// evaluation from a synthetic campaign. Each experiment returns a
// textual report stating the paper's value next to the measured one, so
// `cmd/experiments` (and EXPERIMENTS.md) can show the reproduction
// side by side. One shared Suite carries the expensive pipeline run.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"dnsamp/internal/analysis"
	"dnsamp/internal/core"
	"dnsamp/internal/openintel"
	"dnsamp/internal/pipeline"
	"dnsamp/internal/resolver"
	"dnsamp/internal/scanner"
	"dnsamp/internal/simclock"
)

// Suite bundles one study run plus the auxiliary feeds.
type Suite struct {
	Scale float64
	Study *pipeline.Study
	Feed  *openintel.Feed
	Scans *scanner.Index

	// MainRecords are pass-2 records within the main window.
	MainRecords []*core.AttackRecord

	entityOnce    sync.Once
	entity        *analysis.EntityResult
	ampOnce       sync.Once
	amp           *analysis.AmplifierEcosystem
	clusterOnce   sync.Once
	cluster       *analysis.ClusteringResult
	potentialOnce sync.Once
	pot           *analysis.PotentialResult
}

// NewSuite plans, materializes and analyzes a campaign at the given
// scale. Scale 0.2 is the documentation default; tests use smaller.
func NewSuite(scale float64) *Suite {
	cfg := pipeline.DefaultConfig(scale)
	return NewSuiteWithConfig(cfg)
}

// NewSuiteWithConfig runs a suite from an explicit configuration.
func NewSuiteWithConfig(cfg pipeline.Config) *Suite {
	s := &Suite{Scale: cfg.Campaign.Scale}
	s.Study = pipeline.Run(cfg)

	s.Feed = openintel.New(s.Study.Campaign.DB)
	pool := s.Study.Campaign.Pool
	for i := 0; i < pool.Len(); i++ {
		a := pool.Get(i)
		if a.Kind == resolverAuthoritative {
			s.Feed.RegisterNS(a.Addr, fmt.Sprintf("zone-%d.example.", a.ID))
		}
	}
	s.Scans = scanner.Build(scanner.DefaultConfig(), pool, simclock.EntityPeriod())

	for _, r := range s.Study.Records {
		day := simclock.Time(r.Day) * simclock.Time(simclock.Day)
		if simclock.MainPeriod().Contains(day) {
			s.MainRecords = append(s.MainRecords, r)
		}
	}
	return s
}

// Entity lazily computes the §6 analysis (shared by several figures).
func (s *Suite) Entity() *analysis.EntityResult {
	s.entityOnce.Do(func() {
		s.entity = analysis.AnalyzeEntity(s.Study.Records, len(s.Study.Detections), analysis.DefaultFingerprint())
	})
	return s.entity
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString("  " + l + "\n")
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// All runs every experiment in order.
func (s *Suite) All() []*Report {
	return []*Report{
		s.Table2(),
		s.Figure3(),
		s.Figure4(),
		s.Figure5(),
		s.Figure6(),
		s.Figure7(),
		s.Figure8a(),
		s.Figure8b(),
		s.Figure9(),
		s.Figure10(),
		s.Figure11(),
		s.Figure12(),
		s.Figure13(),
		s.Figure14(),
		s.Figure15(),
		s.Figure16(),
		s.Figure17(),
		s.Figure18(),
		s.Section5(),
		s.Section6(),
		s.Section7(),
		s.Section8(),
		s.AppendixB(),
		s.FutureWork(),
	}
}

// Run executes the experiments whose IDs contain the given substring
// (case-insensitive); empty matches all.
func (s *Suite) Run(filter string) []*Report {
	all := s.All()
	if filter == "" {
		return all
	}
	f := strings.ToLower(filter)
	var out []*Report
	for _, r := range all {
		if strings.Contains(strings.ToLower(r.ID), f) {
			out = append(out, r)
		}
	}
	return out
}

// --- helpers ---------------------------------------------------------------

// resolverAuthoritative aliases the resolver kind used when registering
// the authoritative population with the measurement feed.
const resolverAuthoritative = resolver.Authoritative

// classOf maps an ASN to its class name for the victim-share summary.
func (s *Suite) classOf(asn uint32) string {
	as, ok := s.Study.Campaign.Topo.ASes[asn]
	if !ok {
		return "unknown"
	}
	return as.Type.String()
}

// honeypotByDay indexes honeypot attacks per (victim, day).
func (s *Suite) honeypotKeys() map[core.ClientDay]bool {
	out := make(map[core.ClientDay]bool)
	for _, a := range s.Study.HoneypotAttacks {
		for d := a.Start.Day(); d <= a.End.Day(); d++ {
			out[core.ClientDay{Client: a.VictimKey(), Day: d}] = true
		}
	}
	return out
}

// sparkline renders a compact series for terminal reports.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// groundTruthEntityShare scores fingerprint attribution against ground
// truth (validation only).
func (s *Suite) groundTruthEntityShare() float64 {
	ent := 0
	byDay := make(map[core.ClientDay]bool)
	for _, ev := range s.Study.Campaign.Events {
		if ev.IsEntity {
			byDay[core.ClientDay{Client: ev.VictimKey(), Day: ev.Day().Day()}] = true
		}
	}
	for _, d := range s.Study.Detections {
		if byDay[core.ClientDay{Client: d.Victim, Day: d.Day}] {
			ent++
		}
	}
	if len(s.Study.Detections) == 0 {
		return 0
	}
	return float64(ent) / float64(len(s.Study.Detections))
}
