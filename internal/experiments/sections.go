package experiments

import (
	"slices"

	"dnsamp/internal/analysis"
)

// Section5 reproduces the §5 headline: IXP and honeypot observe mostly
// disjoint attack sets.
func (s *Suite) Section5() *Report {
	r := &Report{ID: "section5", Title: "IXP vs honeypot attack overlap"}
	ov := analysis.Overlap(s.Study.Detections, s.Study.HoneypotAttacks)
	r.addf("paper: 25.7k IXP attacks, 31k honeypot attacks, 1.1k mutual (4.2%% / 3.5%%); 24.6k new at IXP; 96%% invisible to honeypot")
	r.addf("measured (scale %.2f): IXP %d, honeypot %d, mutual %d (%.1f%% of IXP, %.1f%% of honeypot)",
		s.Scale, ov.IXPAttacks, ov.HoneypotAttacks, ov.Mutual,
		100*ov.MutualShareIXP, 100*ov.MutualShareHoneypot)
	r.addf("new at IXP: %d; unique IXP victims: %d (paper: 19k at scale 1)", ov.NewAtIXP, ov.UniqueVictims)
	r.addf("IXP attacks invisible to honeypot: %.1f%% (paper: 96%%)", 100*float64(ov.NewAtIXP)/float64(max(1, ov.IXPAttacks)))
	r.addf("ground truth found at IXP for %.0f%% of honeypot attacks (paper: 16%%)",
		100*float64(len(s.Study.VisibleGroundTruth))/float64(max(1, len(s.Study.HoneypotAttacks))))
	return r
}

// Section6 reproduces the §6 headlines: the major entity's share,
// fingerprint structure, and relocations.
func (s *Suite) Section6() *Report {
	r := &Report{ID: "section6", Title: "tracing the major attack entity"}
	ent := s.Entity()
	r.addf("paper: entity behind 59%% of IXP attacks; 91%% pure odd/even TXIDs; two relocations; requests reach ~85%% after relocation 1")
	r.addf("fingerprinted share of main-window attacks: %.0f%% (ground-truth entity share: %.0f%%)",
		100*ent.ShareOfAttacks, 100*s.groundTruthEntityShare())
	r.addf("pure-parity TXID events: %.0f%%; 48h rhythm score %.2f", 100*ent.PureParityShare, ent.ParityRhythmScore)
	r.addf("detected relocations: %d (paper: 2)", len(ent.Relocations))
	for i, rl := range ent.Relocations {
		r.addf("  relocation %d at %s: ingress AS %d -> %d", i+1, rl.Day.Date(), rl.FromAS, rl.ToAS)
	}
	truth := s.Study.Campaign.Entity
	r.addf("ground truth: reloc1 %s (ingress AS%d), reloc2 %s (ingress AS%d)",
		truth.Reloc1.Date(), truth.Ingress1, truth.Reloc2.Date(), truth.Ingress2)
	var phases []int
	for p := range ent.RequestShareByPhase {
		phases = append(phases, p)
	}
	slices.Sort(phases)
	for _, p := range phases {
		r.addf("request share in phase %d: %.0f%%", p, 100*ent.RequestShareByPhase[p])
	}
	return r
}

// Section7 reproduces the §7 headlines: amplifier ecosystem efficiency.
func (s *Suite) Section7() *Report {
	r := &Report{ID: "section7", Title: "DNS attack practice"}
	eco := s.ampEco()
	cl := s.clusters()
	pot := s.potential()
	r.addf("paper: 45k abused amplifiers; 908 authoritative (2%%); 95%% Shodan-known; 2%% abused pre-discovery; 2%% fixed lists; 45%% day-overlap; 20%% first/last; 14x headroom")
	r.addf("abused amplifiers: %d; authoritative: %d (%.1f%%)",
		eco.TotalAmplifiers, eco.AuthoritativeCount,
		100*float64(eco.AuthoritativeCount)/float64(max(1, eco.TotalAmplifiers)))
	ratio := 0.0
	if eco.NonRootAuthShare > 0 {
		ratio = eco.RootAuthShare / eco.NonRootAuthShare
	}
	r.addf("authoritative share in root-query attacks: %.1f%% vs %.1f%% otherwise (%.1fx, paper 4x)",
		100*eco.RootAuthShare, 100*eco.NonRootAuthShare, ratio)
	r.addf("scanner-known: %.1f%%; abused before discovery: %d", 100*eco.ShodanKnownShare, eco.AbusedBeforeDiscovery)
	r.addf("fixed-list events: %.1f%%; clusters: %d; noise: %.0f%%", 100*cl.FixedListShare, cl.Clusters, 100*cl.NoiseShare)
	r.addf("day-over-day amplifier overlap: %.0f%% (paper 45%%); first/last-day overlap: %.0f%% (paper 20%%)",
		100*eco.DayOverlapMean, 100*eco.FirstLastOverlap)
	r.addf("amplification headroom: %.1fx (paper 14x)", pot.Headroom)
	return r
}

// MonitorReport summarizes the §4.3 live-monitoring victim aggregates
// from the study's detections (the interactive prototype lives in
// cmd/ixpmon).
func (s *Suite) MonitorReport() *Report {
	r := &Report{ID: "monitor", Title: "live monitoring (§4.3)"}
	r.addf("paper: ~631 unique victim /24s per day; day-over-day name-list Jaccard 0.96")
	byDay := make(map[int]map[[3]byte]bool)
	for _, d := range s.Study.Detections {
		if byDay[d.Day] == nil {
			byDay[d.Day] = make(map[[3]byte]bool)
		}
		byDay[d.Day][[3]byte{d.Victim[0], d.Victim[1], d.Victim[2]}] = true
	}
	sum, n := 0, 0
	for _, m := range byDay {
		sum += len(m)
		n++
	}
	if n > 0 {
		r.addf("mean unique victim /24s per day: %.0f (scale %.2f)", float64(sum)/float64(n), s.Scale)
	}
	return r
}
