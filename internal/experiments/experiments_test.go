package experiments

import (
	"strings"
	"sync"
	"testing"

	"dnsamp/internal/pipeline"
	"dnsamp/internal/topology"
)

var (
	suiteOnce sync.Once
	suite     *Suite
)

// testSuite shares one small study across all experiment tests.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		cfg := pipeline.DefaultConfig(0.02)
		cfg.Campaign.Zones.ProceduralNames = 100_000
		cfg.Campaign.Topology = topology.Config{Members: 40, ASesPerClass: 80, Seed: 1}
		suite = NewSuiteWithConfig(cfg)
	})
	return suite
}

func TestAllExperimentsProduceReports(t *testing.T) {
	s := testSuite(t)
	reports := s.All()
	if len(reports) != 24 {
		t.Fatalf("reports = %d, want 24 (T2, F3-F18, S5-S8, AppB, FW)", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if r.ID == "" || r.Title == "" {
			t.Errorf("report missing metadata: %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate report id %q", r.ID)
		}
		seen[r.ID] = true
		if len(r.Lines) == 0 {
			t.Errorf("report %s empty", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("report %s String() malformed", r.ID)
		}
	}
}

func TestRunFilter(t *testing.T) {
	s := testSuite(t)
	got := s.Run("figure8")
	if len(got) != 2 {
		t.Fatalf("filter figure8 matched %d, want 2 (8a, 8b)", len(got))
	}
	if len(s.Run("")) != len(s.All()) {
		t.Error("empty filter should match all")
	}
	if len(s.Run("nonexistent")) != 0 {
		t.Error("bogus filter should match none")
	}
}

func TestSection5Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Section5()
	text := r.String()
	if !strings.Contains(text, "mutual") {
		t.Errorf("section 5 report lacks overlap info:\n%s", text)
	}
}

func TestEntityAttributionQuality(t *testing.T) {
	s := testSuite(t)
	ent := s.Entity()
	if ent.ShareOfAttacks < 0.35 || ent.ShareOfAttacks > 0.80 {
		t.Errorf("entity share = %.2f, paper 59%%", ent.ShareOfAttacks)
	}
	if ent.PureParityShare < 0.80 {
		t.Errorf("pure parity = %.2f, paper 91%%", ent.PureParityShare)
	}
	if ent.ParityRhythmScore < 0.85 {
		t.Errorf("rhythm = %.2f, want near 1", ent.ParityRhythmScore)
	}
	if len(ent.Relocations) < 1 || len(ent.Relocations) > 3 {
		t.Errorf("relocations = %d, paper 2", len(ent.Relocations))
	}
	gt := s.groundTruthEntityShare()
	diff := ent.ShareOfAttacks - gt
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("fingerprint share %.2f vs ground truth %.2f", ent.ShareOfAttacks, gt)
	}
}

func TestAmplifierEcosystemShape(t *testing.T) {
	s := testSuite(t)
	eco := s.ampEco()
	if eco.TotalAmplifiers < 100 {
		t.Fatalf("amplifiers = %d", eco.TotalAmplifiers)
	}
	authShare := float64(eco.AuthoritativeCount) / float64(eco.TotalAmplifiers)
	if authShare > 0.08 {
		t.Errorf("authoritative share = %.3f, paper 2%%", authShare)
	}
	if eco.ShodanKnownShare < 0.85 {
		t.Errorf("scanner-known = %.2f, paper 95%%", eco.ShodanKnownShare)
	}
	if eco.MultiAttackShare < 0.3 {
		t.Errorf("multi-attack share = %.2f, paper 50%%", eco.MultiAttackShare)
	}
	if eco.DayOverlapMean < 0.15 || eco.DayOverlapMean > 0.8 {
		t.Errorf("day overlap = %.2f, paper 45%%", eco.DayOverlapMean)
	}
}

func TestPotentialShape(t *testing.T) {
	s := testSuite(t)
	pot := s.potential()
	// The tail maximum grows with the namespace size: at the paper's
	// default (4.4 M names) headroom reaches ~13-14x; the tiny test
	// namespace (100k) can only support a small multiple.
	if pot.Headroom < 1.2 {
		t.Errorf("headroom = %.1f, want > 1 (max estimated must exceed observed)", pot.Headroom)
	}
	if pot.MaxEstimated <= pot.MisusedMax {
		t.Error("namespace maximum should exceed the misused-name maximum")
	}
	if pot.AbovePotential <= 0 {
		t.Error("no names above misused max")
	}
	if pot.AboveEDNS <= pot.AbovePotential {
		t.Error("tail ordering broken")
	}
	shareEDNS := float64(pot.AboveEDNS) / float64(pot.NamesMeasured)
	if shareEDNS < 1e-5 || shareEDNS > 1e-3 {
		t.Errorf(">4096 share = %g, paper 0.02%%", shareEDNS)
	}
}

func TestGovDominatesTable2(t *testing.T) {
	s := testSuite(t)
	r := s.Table2()
	// The first TLD row after the header lines must be gov.
	for _, line := range r.Lines {
		f := strings.Fields(line)
		if len(f) == 5 && f[0] == "gov" {
			return
		}
		if len(f) == 5 && f[0] != "TLD" && f[0] != "gov" && !strings.Contains(line, "paper") {
			t.Fatalf("top TLD is %q, want gov:\n%s", f[0], r.String())
		}
	}
}
