package experiments

import (
	"fmt"
	"slices"
	"sort"

	"dnsamp/internal/analysis"
	"dnsamp/internal/cluster"
	"dnsamp/internal/core"
	"dnsamp/internal/honeypot"
	"dnsamp/internal/openintel"
	"dnsamp/internal/simclock"
	"dnsamp/internal/stats"
)

// Table2 reproduces Table 2: distribution of attacks and attack traffic
// across misused-name TLDs.
func (s *Suite) Table2() *Report {
	r := &Report{ID: "table2", Title: "attacks and attack traffic per misused-name TLD"}
	rows := analysis.Table2(s.MainRecords, s.Study.NameList.Names)
	r.addf("paper: .gov dominates with 17 names, 74.9%% of packets, 22.8k attacks, max 8069 B")
	r.addf("%-8s %7s %9s %9s %9s", "TLD", "names", "pkts%", "attacks", "maxB")
	for _, row := range rows {
		r.addf("%-8s %7d %8.2f%% %9d %9d", row.TLD, row.Names, row.PacketShare, row.Attacks, row.MaxSize)
	}
	dq := analysis.AttackDurations(s.MainRecords)
	r.addf("durations: q25=%s q50=%s (paper: 25%%<7m, 50%%<33m; sampled spans underestimate)",
		simclock.Duration(dq.Q25), simclock.Duration(dq.Q50))
	shares := analysis.VictimClassShare(s.MainRecords, s.classOf)
	r.addf("victim classes (paper: ISP 36%%, content 24%% of traffic):")
	var classes []string
	for c := range shares {
		classes = append(classes, c)
	}
	slices.Sort(classes)
	for _, c := range classes {
		r.addf("  %-12s %5.1f%%", c, 100*shares[c])
	}
	nx := analysis.AnalyzeNXNS(s.collectVisibleNS())
	r.addf("NXNS check (paper: 70%% of responses <=1 NS, 90%% <=10): <=1 %.0f%%, <=10 %.0f%%",
		100*nx.AtMost1Share, 100*nx.AtMost10Share)
	return r
}

// Figure3 reproduces the selector-consensus curve.
func (s *Suite) Figure3() *Report {
	r := &Report{ID: "figure3", Title: "selector consensus (Jaccard) vs top-N"}
	r.addf("paper: consensus peaks at 29 names per selector")
	r.addf("measured consensus point: N=%d (curve peak %.2f)", s.Study.ConsensusN, s.Study.ConsensusCurve[s.Study.ConsensusN])
	r.addf("curve: %s", sparkline(s.Study.ConsensusCurve[1:]))
	r.addf("final list: %d names (paper: 34), mutual across 3 selectors: %d (paper: 21)",
		len(s.Study.NameList.Names), s.Study.NameList.MutualCount())
	r.addf(".gov share of list: %.0f%% (paper: 17/34 = 50%%)", 100*s.Study.NameList.GovShare())
	return r
}

// Figure4 reproduces the misused-name share vs packet-count bimodality.
func (s *Suite) Figure4() *Report {
	r := &Report{ID: "figure4", Title: "share of misused names per (client, day)"}
	cands := s.Study.AggMain.CandidateSet(s.Study.NameList.Names)
	// Bucket by log10(packets); track share distribution per bucket.
	type bucket struct{ lo, mid, hi, n int }
	buckets := map[int]*bucket{}
	s.Study.AggMain.EachClient(func(_ core.ClientDay, ca *core.ClientAgg) {
		share, cand := ca.ShareOf(cands)
		if cand == 0 {
			return
		}
		b := buckets[stats.LogBucket(float64(ca.Total))]
		if b == nil {
			b = &bucket{}
			buckets[stats.LogBucket(float64(ca.Total))] = b
		}
		b.n++
		switch {
		case share >= 0.9:
			b.hi++
		case share <= 0.1:
			b.lo++
		default:
			b.mid++
		}
	})
	r.addf("paper: bimodal — with higher packet counts, shares concentrate at ~0%% or ~100%%")
	r.addf("%-14s %8s %8s %8s %8s", "packets", "pairs", "<=10%", "mid", ">=90%")
	var keys []int
	for k := range buckets {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		b := buckets[k]
		r.addf("10^%d..10^%d     %8d %7.1f%% %7.1f%% %7.1f%%", k, k+1, b.n,
			100*float64(b.lo)/float64(b.n), 100*float64(b.mid)/float64(b.n), 100*float64(b.hi)/float64(b.n))
	}
	return r
}

// Figure5 reproduces the visibility/threshold trade-off.
func (s *Suite) Figure5() *Report {
	r := &Report{ID: "figure5", Title: "visibility vs minimum packet threshold"}
	thresholds := []int{1, 2, 3, 5, 10, 20, 50, 100, 200}
	pts := core.VisibilityCurve(s.Study.AggMain, s.Study.VisibleGroundTruth, s.Study.NameList.Names,
		s.Study.Cfg.Thresholds.MinShare, thresholds)
	r.addf("paper: at 10 packets, 22%% of visible ground-truth attacks remain; all flows 8%%; 24k+ new attacks")
	r.addf("%8s %14s %12s %12s", "minPkts", "groundTruth%", "allFlows%", "detections")
	for _, p := range pts {
		r.addf("%8d %13.1f%% %11.1f%% %12d", p.MinPackets, 100*p.GroundTruthShare, 100*p.AllFlowsShare, p.Detections)
	}
	return r
}

// Figure6 reproduces the detection-rate convergence over selector sizes.
func (s *Suite) Figure6() *Report {
	r := &Report{ID: "figure6", Title: "detection rate vs selector list size"}
	r.addf("paper: converges to 99%% at 29 names per selector")
	for _, n := range []int{10, 15, 20, 25, s.Study.ConsensusN} {
		nl := core.BuildNameList(n, s.Study.Sel1, s.Study.Sel2, s.Study.Sel3)
		rate := core.ValidateDetection(s.Study.AggMain, s.Study.VisibleGroundTruth, nl.Names, s.Study.Cfg.Thresholds)
		r.addf("N=%2d: detection rate %.1f%% (list size %d)", n, 100*rate, len(nl.Names))
	}
	return r
}

// Figure7 reproduces the mutual-attack intensity deciles.
func (s *Suite) Figure7() *Report {
	r := &Report{ID: "figure7", Title: "decile intensity of mutual IXP/honeypot attacks"}
	ov := analysis.Overlap(s.Study.Detections, s.Study.HoneypotAttacks)
	r.addf("paper: mutual attacks are strong honeypot attacks (mean decile 7.7) but medium IXP attacks (6.3)")
	r.addf("measured mean deciles: honeypot %.1f, IXP %.1f (n=%d mutual)",
		ov.MeanDecileHoneypot, ov.MeanDecileIXP, ov.Mutual)
	hp := make([]float64, 10)
	ix := make([]float64, 10)
	for i := 0; i < 10; i++ {
		hp[i] = ov.DecileHistHoneypot[i]
		ix[i] = ov.DecileHistIXP[i]
	}
	r.addf("honeypot decile hist: %s", sparkline(hp))
	r.addf("IXP decile hist:      %s", sparkline(ix))
	return r
}

// Figure8a reproduces the entity's per-name attack-volume time series.
func (s *Suite) Figure8a() *Report {
	r := &Report{ID: "figure8a", Title: "entity attack volume per misused name over time"}
	ent := s.Entity()
	r.addf("paper: ~10 .gov names used in sequence Jun 2019 - Apr 2020, abrupt transitions")
	var names []string
	for n := range ent.NameSeries {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return firstDay(ent.NameSeries[names[i]]) < firstDay(ent.NameSeries[names[j]])
	})
	for _, n := range names {
		days := ent.NameSeries[n]
		first, last, total := 1<<60, 0, 0
		for d, p := range days {
			if d < first {
				first = d
			}
			if d > last {
				last = d
			}
			total += p
		}
		r.addf("%-24s %s .. %s  pkts=%d", n,
			(simclock.Time(first) * simclock.Time(simclock.Day)).Date(),
			(simclock.Time(last) * simclock.Time(simclock.Day)).Date(), total)
	}
	r.addf("detected name transitions: %d (paper: 9 over 11 months)", len(ent.Transitions))
	return r
}

// Figure8b reproduces the ANY-size series with rollover plateaus.
func (s *Suite) Figure8b() *Report {
	r := &Report{ID: "figure8b", Title: "estimated ANY sizes of misused names (rollover plateaus)"}
	r.addf("paper: plateaus last two weeks (double-signature ZSK rollovers); transitions follow size drops")
	names := s.Study.Campaign.DB.EntityNames()
	for _, n := range names[:3] {
		series := openintel.New(s.Study.Campaign.DB).ANYSizeSeries(n, simclock.EntityPeriod())
		plateaus := openintel.RolloverPlateaus(series, 1500)
		var lens []string
		for _, p := range plateaus {
			lens = append(lens, fmt.Sprintf("%dd", p.Days()))
		}
		vals := make([]float64, 0, len(series))
		for _, p := range series {
			vals = append(vals, float64(p.Size))
		}
		r.addf("%-24s plateaus: %v  series: %s", n, lens, sparkline(decimate(vals, 60)))
	}
	return r
}

// Figure9 reproduces the per-name observed response-size distributions.
func (s *Suite) Figure9() *Report {
	r := &Report{ID: "figure9", Title: "observed response sizes per entity name (violin)"}
	ent := s.Entity()
	r.addf("paper: bi-/tri-modal per name, clusters near the theoretical maximum")
	var names []string
	for n := range ent.SizesByName {
		names = append(names, n)
	}
	slices.Sort(names)
	for _, n := range names {
		sizes := ent.SizesByName[n]
		if len(sizes) < 10 {
			continue
		}
		e := stats.ECDF{}
		for _, v := range sizes {
			e.AddInt(v)
		}
		modes := modality(sizes)
		r.addf("%-24s n=%6d q10=%5.0f q50=%5.0f q90=%5.0f max=%5.0f modes=%d",
			n, len(sizes), e.Quantile(0.1), e.Quantile(0.5), e.Quantile(0.9), e.Max(), modes)
	}
	return r
}

// Figure10 reproduces the TXID entropy check.
func (s *Suite) Figure10() *Report {
	r := &Report{ID: "figure10", Title: "unique TXIDs vs packets per entity attack"}
	ent := s.Entity()
	r.addf("paper: TXIDs 1-2 orders of magnitude below packet count; 91%% pure odd/even")
	below1, below2, n := 0, 0, 0
	for _, p := range ent.TXIDScatter {
		if p.Packets < 10 {
			continue
		}
		n++
		if float64(p.TXIDs) <= float64(p.Packets)/10 {
			below1++
		}
		if float64(p.TXIDs) <= float64(p.Packets)/100 {
			below2++
		}
	}
	if n > 0 {
		r.addf("events with TXIDs <= packets/10: %.0f%%; <= packets/100: %.0f%% (n=%d)",
			100*float64(below1)/float64(n), 100*float64(below2)/float64(n), n)
	}
	r.addf("pure-parity share: %.1f%% (paper: 91%%)", 100*ent.PureParityShare)
	r.addf("48h parity rhythm score: %.2f (1.0 = clean two-day alternation)", ent.ParityRhythmScore)
	return r
}

// Figure11 reproduces the entity's victim series.
func (s *Suite) Figure11() *Report {
	r := &Report{ID: "figure11", Title: "unique entity victims per day (IP/prefix/ASN)"}
	ent := s.Entity()
	r.addf("paper: stable until the transition to the last main-window name, then ~10x jump")
	var ips []float64
	var pre, post []int
	boost := s.Study.Campaign.Entity.BoostStart
	for _, vd := range ent.VictimSeries {
		if !simclock.MainPeriod().Contains(vd.Day) {
			continue
		}
		ips = append(ips, float64(vd.IPs))
		if vd.Day.Before(boost) {
			pre = append(pre, vd.IPs)
		} else {
			post = append(post, vd.IPs)
		}
	}
	r.addf("victims/day series: %s", sparkline(decimate(ips, 60)))
	if len(pre) > 0 && len(post) > 0 {
		r.addf("mean victims/day before: %.0f, after: %.0f (ratio %.1fx, paper ~10x)",
			stats.Mean(pre), stats.Mean(post), stats.Mean(post)/stats.Mean(pre))
	}
	return r
}

// Figure12 reproduces the known/new amplifier series.
func (s *Suite) Figure12() *Report {
	r := &Report{ID: "figure12", Title: "known vs new amplifiers per day (entity)"}
	ent := s.Entity()
	r.addf("paper: stable totals; bursts of new amplifiers follow name transitions; new ones almost daily")
	daysWithNew := 0
	var newCounts, knownCounts []float64
	for _, ad := range ent.AmplifierSeries {
		if !simclock.MainPeriod().Contains(ad.Day) {
			continue
		}
		if ad.New > 0 {
			daysWithNew++
		}
		newCounts = append(newCounts, float64(ad.New))
		knownCounts = append(knownCounts, float64(ad.Known))
	}
	r.addf("days with new amplifiers: %d/%d", daysWithNew, len(newCounts))
	r.addf("known/day: %s", sparkline(decimate(knownCounts, 60)))
	r.addf("new/day:   %s", sparkline(decimate(newCounts, 60)))
	return r
}

// Figure13 reproduces the amplifier-involvement CDFs.
func (s *Suite) Figure13() *Report {
	r := &Report{ID: "figure13", Title: "amplifiers per attack; attacks per amplifier (CDFs)"}
	eco := s.ampEco()
	r.addf("paper: 80%% of attacks use 10-100 amplifiers; 50%% of amplifiers in >1 attack, 23%% in >10")
	a := eco.AmpsPerAttack
	in10to100 := a.P(100) - a.P(9.999)
	r.addf("attacks using 10-100 amplifiers: %.0f%% (q50=%.0f, max=%.0f)", 100*in10to100, a.Quantile(0.5), a.Max())
	r.addf("amplifiers in >1 attack: %.0f%% (paper 50%%); >10 attacks: %.0f%% (paper 23%%)",
		100*eco.MultiAttackShare, 100*eco.TenPlusShare)
	return r
}

// Figure14 reproduces the bilateral clustering of amplifier sets.
func (s *Suite) Figure14() *Report {
	r := &Report{ID: "figure14", Title: "t-SNE + DBSCAN over attack amplifier sets"}
	cl := s.clusters()
	r.addf("paper: 67 clusters, ~92%% outliers, ~2%% of events on fixed lists")
	r.addf("clusters: %d, noise share: %.1f%%, fixed-list share: %.1f%%",
		cl.Clusters, 100*cl.NoiseShare, 100*cl.FixedListShare)
	r.addf("most static cluster: %d attacks over %d days, mean intra-distance %.3f (paper α: 177/40d, unchanged)",
		cl.MostStatic.Attacks, cl.MostStatic.SpanDays, cl.MostStatic.MeanIntraDistance)
	r.addf("largest-list cluster: mean %.0f amplifiers/attack, intra-distance %.3f (paper β: ~527, small drift)",
		cl.Largest.MeanAmplifiers, cl.Largest.MeanIntraDistance)
	if len(cl.Embedding) > 0 {
		clustered := 0
		var cIdx, nIdx []int
		for i, l := range cl.EmbeddingLabels {
			if l >= 0 {
				clustered++
				cIdx = append(cIdx, i)
			} else {
				nIdx = append(nIdx, i)
			}
		}
		r.addf("embedded %d points (%d in clusters); cluster spread %.2f vs noise spread %.2f",
			len(cl.Embedding), clustered, meanClusterSpread(cl), cluster.Spread(cl.Embedding, nIdx))
	}
	return r
}

// Figure15 reproduces the scan-history first/last-seen distribution.
func (s *Suite) Figure15() *Report {
	r := &Report{ID: "figure15", Title: "scanner first/last sighting of abused amplifiers"}
	eco := s.ampEco()
	r.addf("paper: most amplifiers first seen within 6 months before the attacks; 95%% known; ~2%% abused pre-discovery")
	r.addf("known to scanner: %.1f%%; abused before discovery: %d (%.1f%% of abused)",
		100*eco.ShodanKnownShare, eco.AbusedBeforeDiscovery,
		100*float64(eco.AbusedBeforeDiscovery)/float64(max(1, eco.TotalAmplifiers)))
	r.addf("first-seen by half-year (2016H1..): %s", histString(eco.FirstSeenHist))
	r.addf("last-seen  by half-year (2016H1..): %s", histString(eco.LastSeenHist))
	return r
}

// Figure16 reproduces the amplification-potential CDF.
func (s *Suite) Figure16() *Report {
	r := &Report{ID: "figure16", Title: "estimated ANY sizes across the namespace"}
	pot := s.potential()
	r.addf("paper: 440M names; 9048 above the best misused name (0.002%%); 92k > 4096 B (0.02%%); max 142,855 B; 14x headroom")
	r.addf("measured: %d names; %d above misused max (%.4f%%); %d > 4096 B (%.3f%%)",
		pot.NamesMeasured, pot.AbovePotential,
		100*float64(pot.AbovePotential)/float64(pot.NamesMeasured),
		pot.AboveEDNS, 100*float64(pot.AboveEDNS)/float64(pot.NamesMeasured))
	r.addf("max estimated %d B vs largest observed %d B: headroom %.1fx",
		pot.MaxEstimated, pot.LargestObserved, pot.Headroom)
	shares := analysis.ComputeTrafficShares(s.Study.AggMain, s.Study.Detections)
	r.addf("attack shares: %.1f%% of DNS packets (paper 5%%), %.1f%% of bytes (paper 40%%)",
		100*shares.AttackPacketShare, 100*shares.AttackByteShare)
	r.addf("ANY attack shares: %.0f%% of ANY packets (paper 68%%), %.0f%% of ANY bytes (paper 78%%)",
		100*shares.ANYAttackPacketShare, 100*shares.ANYAttackByteShare)
	return r
}

// Figure17 reproduces the cache-snooping popularity check.
func (s *Suite) Figure17() *Report {
	r := &Report{ID: "figure17", Title: "cache hits for misused vs popular names"}
	st := analysis.RunSnoopStudy(analysis.DefaultSnoopConfig(), s.Study.Campaign.DB,
		s.Study.NameList.Sorted(), simclock.MeasurementEnd)
	r.addf("paper: misused names cached like top-Alexa names despite low rank; anchors mostly miss")
	r.addf("phase 1: %d resolvers kept, %d forwarders excluded", st.ResolversFound, st.ForwardersExcluded)
	for _, res := range st.Results {
		tag := ""
		if res.Misused {
			tag = " *misused"
		}
		if res.Anchor {
			tag = " (anchor)"
		}
		rank := "-"
		if res.AlexaRank > 0 {
			rank = fmt.Sprintf("%d", res.AlexaRank)
		}
		r.addf("%-26s rank=%-8s responses=%5d hits=%4.0f%%%s",
			res.Name, rank, res.Responses, 100*res.HitRate(), tag)
	}
	return r
}

// Figure18 reproduces the honeypot convergence curve.
func (s *Suite) Figure18() *Report {
	r := &Report{ID: "figure18", Title: "honeypot sensor convergence"}
	curve := honeypot.Convergence(s.Study.HoneypotAttacks, s.Study.Cfg.Campaign.NumSensors)
	r.addf("paper: 99.5%% of victims visible with 5 sensors; 50 sensors for 99.9%%")
	for _, k := range []int{1, 2, 5, 10, 20, 50} {
		if k <= len(curve) {
			r.addf("%2d sensors: %.2f%% of victims", k, 100*curve[k-1])
		}
	}
	r.addf("curve: %s", sparkline(curve))
	return r
}

// --- shared lazy analyses ---------------------------------------------------

func (s *Suite) ampEco() *analysis.AmplifierEcosystem {
	s.ampOnce.Do(func() {
		s.amp = analysis.AnalyzeAmplifiers(s.MainRecords, s.Feed, s.Scans)
	})
	return s.amp
}

func (s *Suite) clusters() *analysis.ClusteringResult {
	s.clusterOnce.Do(func() {
		s.cluster = analysis.ClusterAmplifierSets(s.MainRecords, 0.35, 4, 600)
	})
	return s.cluster
}

func (s *Suite) potential() *analysis.PotentialResult {
	s.potentialOnce.Do(func() {
		s.pot = analysis.AnalyzePotential(s.Feed, s.Study.NameList.Sorted(), s.MainRecords,
			simclock.MeasurementStart.Add(simclock.Days(45)), 200)
	})
	return s.pot
}

func (s *Suite) collectVisibleNS() []int {
	// VisibleNS is collected during pass 2 by the Collector; the
	// pipeline does not expose the collector, so recompute from record
	// sizes is not possible — instead the pipeline stores it.
	return s.Study.VisibleNS
}

// --- small helpers ----------------------------------------------------------

func firstDay(days map[int]int) int {
	first := 1 << 60
	for d := range days {
		if d < first {
			first = d
		}
	}
	return first
}

func decimate(vals []float64, n int) []float64 {
	if len(vals) <= n {
		return vals
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, vals[i*len(vals)/n])
	}
	return out
}

// modality estimates the number of modes of a size sample via histogram
// peaks (512-byte bins).
func modality(sizes []int) int {
	h := stats.NewHistogram(0, 512)
	for _, s := range sizes {
		h.Observe(float64(s))
	}
	modes := 0
	thresh := h.N / 20
	for i, c := range h.Bins {
		if c <= thresh {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Bins[i-1]
		}
		right := 0
		if i+1 < len(h.Bins) {
			right = h.Bins[i+1]
		}
		if c >= left && c > right || c > left && c >= right {
			modes++
		}
	}
	return modes
}

func histString(h map[int]int) string {
	var keys []int
	for k := range h {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	var vals []float64
	for _, k := range keys {
		vals = append(vals, float64(h[k]))
	}
	return sparkline(vals)
}

func meanClusterSpread(cl *analysis.ClusteringResult) float64 {
	byCluster := make(map[int][]int)
	for i, l := range cl.EmbeddingLabels {
		if l >= 0 {
			byCluster[l] = append(byCluster[l], i)
		}
	}
	var sum float64
	n := 0
	for _, idx := range byCluster {
		if len(idx) < 2 {
			continue
		}
		sum += cluster.Spread(cl.Embedding, idx)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
