package experiments

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline runes = %d", len([]rune(s)))
	}
	if !strings.HasSuffix(s, "█") || !strings.HasPrefix(s, "▁") {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	// Constant series must not divide by zero.
	flat := sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestDecimate(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := decimate(in, 10)
	if len(out) != 10 {
		t.Fatalf("decimated length = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatal("decimation should preserve order for monotone input")
		}
	}
	short := []float64{1, 2}
	if got := decimate(short, 10); len(got) != 2 {
		t.Errorf("short input should pass through, got %v", got)
	}
}

func TestModality(t *testing.T) {
	// Clear bimodal sample: one mode near 1232, one near 5800.
	var sizes []int
	for i := 0; i < 100; i++ {
		sizes = append(sizes, 1232, 5800)
	}
	m := modality(sizes)
	if m < 2 {
		t.Errorf("bimodal sample modes = %d", m)
	}
	// Unimodal.
	var uni []int
	for i := 0; i < 100; i++ {
		uni = append(uni, 4000+i%50)
	}
	if got := modality(uni); got != 1 {
		t.Errorf("unimodal sample modes = %d", got)
	}
}

func TestFirstDay(t *testing.T) {
	if got := firstDay(map[int]int{9: 1, 3: 2, 7: 5}); got != 3 {
		t.Errorf("firstDay = %d", got)
	}
}

func TestHistString(t *testing.T) {
	s := histString(map[int]int{0: 1, 2: 8, 1: 3})
	if len([]rune(s)) != 3 {
		t.Errorf("histString runes = %d (%q)", len([]rune(s)), s)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "y"}
	r.addf("value %d", 7)
	out := r.String()
	if !strings.Contains(out, "== x: y ==") || !strings.Contains(out, "value 7") {
		t.Errorf("report format: %q", out)
	}
}
