// Quickstart: plan a small synthetic campaign, run the §4 detection
// pipeline end to end, and print the headline numbers. This is the
// minimal end-to-end use of the public pipeline API.
package main

import (
	"fmt"

	"dnsamp/internal/analysis"
	"dnsamp/internal/core"
	"dnsamp/internal/pipeline"
)

func main() {
	// Scale 0.03 finishes in a few seconds. 0.2 approximates the paper
	// within a few minutes; 1.0 is full paper scale. The Runner keeps
	// its staged state around so we can re-run late stages below;
	// pipeline.Run(cfg) is the one-shot equivalent.
	cfg := pipeline.DefaultConfig(0.03)
	r := pipeline.NewRunner(cfg)
	st := r.Study()

	fmt.Println("== misused-name identification (§4.1) ==")
	fmt.Printf("selector consensus point: %d names per selector (paper: 29)\n", st.ConsensusN)
	fmt.Printf("final list: %d names, %.0f%% under .gov (paper: 34 names, 50%%)\n",
		len(st.NameList.Names), 100*st.NameList.GovShare())

	fmt.Println("\n== attack detection (§4.2) ==")
	fmt.Printf("attacks at the IXP: %d (victim, day) pairs\n", len(st.Detections))

	ov := analysis.Overlap(st.Detections, st.HoneypotAttacks)
	fmt.Println("\n== IXP vs honeypot (§5) ==")
	fmt.Printf("honeypot attacks: %d; mutual: %d (%.1f%% of IXP, paper: 4.2%%)\n",
		ov.HoneypotAttacks, ov.Mutual, 100*ov.MutualShareIXP)
	fmt.Printf("attacks invisible to the honeypot: %.0f%% (paper: 96%%)\n",
		100*float64(ov.NewAtIXP)/float64(ov.IXPAttacks))

	ent := analysis.AnalyzeEntity(st.Records, len(st.Detections), analysis.DefaultFingerprint())
	fmt.Println("\n== major attack entity (§6) ==")
	fmt.Printf("fingerprinted share of attacks: %.0f%% (paper: 59%%)\n", 100*ent.ShareOfAttacks)
	fmt.Printf("events with single-parity TXIDs: %.0f%% (paper: 91%%)\n", 100*ent.PureParityShare)
	fmt.Printf("detected relocations: %d (paper: 2)\n", len(ent.Relocations))

	// Staged API: re-run detection under stricter thresholds without
	// re-aggregating (the expensive pass-1 traffic replay is reused).
	base := len(st.Detections)
	r.Cfg.Thresholds = core.Thresholds{MinShare: 0.99, MinPackets: 50}
	r.Detect()
	fmt.Println("\n== threshold sensitivity (staged re-Detect) ==")
	fmt.Printf("attacks at share>=0.99, packets>=50: %d (vs %d at the defaults)\n",
		len(st.Detections), base)
}
