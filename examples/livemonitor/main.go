// Livemonitor demonstrates the §4.3 online deployment: sampled traffic
// streams day by day from a source.Source (as it would from an sFlow
// collector), the monitor keeps a rolling daily aggregate, refreshes
// the misused-name list every five minutes of traffic time, and emits
// per-day victim statistics.
//
// Unlike the offline pipeline, the monitor never sees the future: name
// lists adapt as attacks change.
package main

import (
	"fmt"

	"dnsamp/internal/core"
	"dnsamp/internal/ecosystem"
	"dnsamp/internal/simclock"
	"dnsamp/internal/source"
)

func main() {
	c := ecosystem.NewCampaign(ecosystem.DefaultCampaignConfig(0.03))
	mon := core.NewMonitor(29, 5*simclock.Minute, core.DefaultThresholds())

	// Stream one week that includes an entity name transition so the
	// list update is visible.
	start := simclock.MeasurementStart.Add(simclock.Days(16))
	window := simclock.Window{Start: start, End: start.Add(simclock.Days(7))}
	src := source.NewSynthetic(ecosystem.NewGenerator(c, 11), window)
	mon.Consume(src, c.Topo, 0, func(day simclock.Time, n int) {
		fmt.Printf("%s streamed (entity currently misuses %v)\n", day.Date(), c.Entity.NameAt(day))
	})

	fmt.Println("\nday          victims  /24s  list-Jaccard")
	for _, d := range mon.Days() {
		fmt.Printf("%s %8d %5d  %.2f\n", d.Day.Date(), d.Victims, d.Prefixes24, d.NameListJaccard)
	}
	fmt.Printf("\nname-list refreshes: %d (every 5 traffic-minutes)\n", len(mon.Updates))
	fmt.Printf("mean day-over-day list Jaccard: %.2f (paper: 0.96)\n", mon.MeanNameListJaccard())
}
