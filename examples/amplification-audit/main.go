// Amplification-audit uses the namespace, measurement feed and resolver
// substrates directly (no attack traffic): it estimates ANY response
// sizes across the namespace (§7.2 / Fig. 16), shows how DNSSEC
// double-signature rollovers inflate .gov names over time (Fig. 8b), and
// measures live amplification factors through a simulated open resolver.
package main

import (
	"fmt"
	"net/netip"
	"sort"

	"dnsamp/internal/dnswire"
	"dnsamp/internal/openintel"
	"dnsamp/internal/resolver"
	"dnsamp/internal/simclock"
	"dnsamp/internal/zonedb"
)

func main() {
	db := zonedb.New(zonedb.Config{ProceduralNames: 1_000_000})
	feed := openintel.New(db)
	now := simclock.MeasurementStart.Add(simclock.Days(45))

	fmt.Println("-- namespace-wide ANY size audit (Fig. 16) --")
	var over4096, overMisused, maxSize int
	misusedMax := 0
	for _, n := range db.MisusedCandidates() {
		if s := feed.ANYSize(n, now); s > misusedMax {
			misusedMax = s
		}
	}
	feed.EachName(func(name string) {
		s := feed.ANYSize(name, now)
		if s > 4096 {
			over4096++
		}
		if s > misusedMax {
			overMisused++
		}
		if s > maxSize {
			maxSize = s
		}
	})
	fmt.Printf("names measured: %d\n", feed.NumNames())
	fmt.Printf("misused-name maximum: %d B\n", misusedMax)
	fmt.Printf("names above 4096 B: %d (%.3f%%; paper: 0.02%%)\n",
		over4096, 100*float64(over4096)/float64(feed.NumNames()))
	fmt.Printf("names above the misused maximum: %d (paper: 9048 of 440M)\n", overMisused)
	fmt.Printf("largest estimate: %d B -> %.1fx headroom over the misused maximum\n",
		maxSize, float64(maxSize)/float64(misusedMax))

	fmt.Println("\n-- DNSSEC rollover inflation (Fig. 8b) --")
	for _, name := range db.EntityNames()[:3] {
		series := feed.ANYSizeSeries(name, simclock.MainPeriod())
		min, max := series[0].Size, series[0].Size
		for _, p := range series {
			if p.Size < min {
				min = p.Size
			}
			if p.Size > max {
				max = p.Size
			}
		}
		plateaus := openintel.RolloverPlateaus(series, 1500)
		fmt.Printf("%-26s base %4d B, rollover %4d B, %d plateau(s) of up to 14 days\n",
			name, min, max, len(plateaus))
	}

	fmt.Println("\n-- live amplification factors through an open resolver --")
	r := resolver.New(netip.MustParseAddr("100.64.0.1"), resolver.Recursive, db)
	probe := append([]string{}, db.AttackedNames()...)
	sort.Slice(probe, func(i, j int) bool {
		return db.ANYSize(probe[i], now) > db.ANYSize(probe[j], now)
	})
	fmt.Println("name                        ANY size   amplification")
	for _, n := range probe[:8] {
		af := r.AmplificationFactor(n, dnswire.TypeANY, now)
		fmt.Printf("%-26s %7d B %10.1fx\n", n, db.ANYSize(n, now), af)
	}
	fmt.Println("\nRFC 8482 comparison (minimal ANY):")
	fmt.Printf("%-26s %10.1fx\n", "facebook.com.", r.AmplificationFactor("facebook.com", dnswire.TypeANY, now))
}
