// Entityhunt walks through the §6 fingerprinting workflow: detect
// attacks, profile their DNS transaction IDs, link the .gov rotation to
// one entity, and recover its relocations — all from observable wire
// data, then scored against the generator's ground truth.
package main

import (
	"fmt"
	"slices"

	"dnsamp/internal/analysis"
	"dnsamp/internal/pipeline"
	"dnsamp/internal/simclock"
)

func main() {
	cfg := pipeline.DefaultConfig(0.04)
	st := pipeline.Run(cfg)

	fp := analysis.DefaultFingerprint()
	ent := analysis.AnalyzeEntity(st.Records, len(st.Detections), fp)

	fmt.Printf("attack records analyzed: %d; attributed to one entity: %d (%.0f%% of main-window attacks)\n",
		len(st.Records), len(ent.Records), 100*ent.ShareOfAttacks)

	fmt.Println("\n-- TXID structure (Fig. 10) --")
	fmt.Printf("single-parity events: %.0f%% (paper: 91%%)\n", 100*ent.PureParityShare)
	fmt.Printf("48-hour odd/even rhythm score: %.2f, phase %d\n", ent.ParityRhythmScore, ent.RhythmPhase)

	fmt.Println("\n-- name rotation (Fig. 8a) --")
	type span struct {
		name        string
		first, last int
	}
	var spans []span
	for name, days := range ent.NameSeries {
		s := span{name: name, first: 1 << 60}
		for d := range days {
			if d < s.first {
				s.first = d
			}
			if d > s.last {
				s.last = d
			}
		}
		spans = append(spans, s)
	}
	slices.SortFunc(spans, func(a, b span) int { return int(a.first - b.first) })
	for _, s := range spans {
		fmt.Printf("  %-26s %s .. %s\n", s.name,
			(simclock.Time(s.first) * simclock.Time(simclock.Day)).Date(),
			(simclock.Time(s.last) * simclock.Time(simclock.Day)).Date())
	}

	fmt.Println("\n-- relocations (network-layer observables) --")
	for i, r := range ent.Relocations {
		fmt.Printf("  relocation %d detected %s: ingress AS%d -> AS%d\n", i+1, r.Day.Date(), r.FromAS, r.ToAS)
	}
	truth := st.Campaign.Entity
	fmt.Printf("  ground truth:          %s -> AS%d, %s -> AS%d\n",
		truth.Reloc1.Date(), truth.Ingress1, truth.Reloc2.Date(), truth.Ingress2)

	fmt.Println("\n-- request/response mix per phase --")
	var phases []int
	for p := range ent.RequestShareByPhase {
		phases = append(phases, p)
	}
	slices.Sort(phases)
	for _, p := range phases {
		fmt.Printf("  phase %d: %.0f%% requests (paper: ~0%% before, ~85%% after relocation 1)\n",
			p, 100*ent.RequestShareByPhase[p])
	}
}
